//! HSD [27]: hierarchical item-inconsistency signal learning for sequence
//! denoising — the strongest explicit-denoising baseline and the `f_den`
//! SSDRec plugs into its third stage (paper Eq. 14).
//!
//! HSD learns two inconsistency signals per position:
//!
//! 1. **sequentiality** — how well the item fits its bidirectional context,
//!    scored from `h^L_t ⊙ h^R_t ⊙ h_t` of a Bi-LSTM (the same "strictest
//!    condition" SSDRec's Eq. 9 uses), and
//! 2. **user interest** — the item's affinity to the user representation.
//!
//! Their product is the keep-probability; a binary Gumbel-Softmax makes the
//! keep/drop decision differentiable. Dropped items are masked (zeroed) in
//! the representation sequence — batch-friendly removal.

use ssdrec_data::Batch;
use ssdrec_tensor::nn::{gumbel_softmax, BiLstm, Embedding, GumbelMode, Linear};
use ssdrec_tensor::{Binding, Graph, ParamStore, Rng, Tensor, Var};

use ssdrec_models::{Bert4RecEncoder, RecModel, SeqEncoder};

/// The reusable denoising core: inconsistency signals + differentiable
/// keep/drop masking. SSDRec's hierarchical denoising module instantiates
/// this directly.
pub struct HsdCore {
    bilstm: BiLstm,
    w_seq: Linear,
    dim: usize,
}

impl HsdCore {
    /// Build a core for representation width `d`.
    pub fn new(store: &mut ParamStore, name: &str, d: usize, rng: &mut Rng) -> Self {
        HsdCore {
            bilstm: BiLstm::new(store, &format!("{name}.bilstm"), d, d, rng),
            w_seq: Linear::new(store, &format!("{name}.w_seq"), d, 1, rng),
            dim: d,
        }
    }

    /// Keep probabilities `B×T` in `(0,1)`: sequentiality × user interest.
    ///
    /// Both signal logits carry a constant `+2` *conservative keep prior*:
    /// at initialisation each sigmoid sits near 0.73, so the product starts
    /// just above the keep threshold and the model must learn evidence to
    /// drop an item.
    /// Without the prior the product of two centred sigmoids starts at 0.25
    /// and the denoiser drops almost everything before learning anything —
    /// the curriculum idea behind HSD's temperature schedule.
    pub fn keep_probs(&self, g: &mut Graph, bind: &Binding, h_seq: Var, user: Var) -> Var {
        const KEEP_PRIOR: f32 = 1.0;
        let (b, t, d) = g.value(h_seq).dims3();
        // Sequentiality: σ(w · (h^L ⊙ h^R ⊙ h) + prior).
        let (hl, hr) = self.bilstm.forward(g, bind, h_seq);
        let p1 = g.mul(hl, hr);
        let p2 = g.mul(p1, h_seq);
        let s1 = self.w_seq.forward(g, bind, p2); // B×T×1
        let s1 = g.reshape(s1, &[b, t]);
        let s1 = g.add_scalar(s1, KEEP_PRIOR);
        let s1 = g.sigmoid(s1);
        // User interest: σ(h_t · e_u / √d + prior).
        let u3 = g.reshape(user, &[b, d, 1]);
        let dots = g.matmul(h_seq, u3); // B×T×1
        let dots = g.reshape(dots, &[b, t]);
        let dots = g.scale(dots, 1.0 / (d as f32).sqrt());
        let dots = g.add_scalar(dots, KEEP_PRIOR);
        let s2 = g.sigmoid(dots);
        g.mul(s1, s2)
    }

    /// Per-row calibration of raw keep scores into usable keep
    /// probabilities: `p_cal = σ(κ·(p / mean_row(p) − β))`.
    ///
    /// The raw score (a product of sigmoids, possibly multiplied by a graph
    /// prior) is a *ranking* signal whose absolute level drifts with its
    /// factors; sampling a Bernoulli mask from it directly would drop most
    /// of every sequence. Calibration recentres each sequence so that
    /// average-coherence items keep with high probability while items a
    /// fraction `β` below their sequence mean fall towards dropping — the
    /// same rule [`crate::relative_keep`] applies at decision time
    /// (`p_cal > 0.5 ⇔ p > β·mean`). Differentiable in `p`.
    pub fn calibrate(&self, g: &mut Graph, probs: Var, beta: f32, kappa: f32) -> Var {
        let (b, t) = {
            let s = g.value(probs).shape();
            (s[0], s[1])
        };
        let sums = g.sum_last(probs); // B
        let means = g.scale(sums, 1.0 / t as f32);
        let means = g.add_scalar(means, 1e-9);
        let m2 = g.reshape(means, &[b, 1]);
        let ones = g.constant(Tensor::ones(&[1, t]));
        let denom = g.matmul(m2, ones); // B×T
        let ratio = g.div(probs, denom);
        let centred = g.add_scalar(ratio, -beta);
        let scaled = g.scale(centred, kappa);
        g.sigmoid(scaled)
    }

    /// Sample a straight-through binary keep mask `B×T×1` from keep
    /// probabilities via a two-class Gumbel-Softmax at temperature `tau`.
    pub fn sample_mask(&self, g: &mut Graph, rng: &mut Rng, probs: Var, tau: f32) -> Var {
        let (b, t) = {
            let s = g.value(probs).shape();
            (s[0], s[1])
        };
        let p3 = g.reshape(probs, &[b, t, 1]);
        let one = g.constant(Tensor::ones(&[b, t, 1]));
        let q3 = g.sub(one, p3);
        let cat = g.concat_last(&[p3, q3]); // B×T×2
        let gs = gumbel_softmax(g, rng, cat, tau, GumbelMode::Hard);
        g.slice_last(gs, 0, 1) // B×T×1
    }

    /// Deterministic keep mask as a constant `B×T×1` tensor — used at
    /// inference, where HSD denoises without sampling. Uses the workspace's
    /// relative keep rule (drop positions well below the sequence's mean
    /// keep probability), which is invariant to score calibration.
    pub fn hard_mask(&self, g: &mut Graph, probs: Var) -> Var {
        self.hard_mask_with(g, probs, crate::RELATIVE_KEEP_BETA)
    }

    /// [`HsdCore::hard_mask`] with an explicit relative threshold `beta`.
    pub fn hard_mask_with(&self, g: &mut Graph, probs: Var, beta: f32) -> Var {
        let pv = g.value(probs).clone();
        let (b, t) = (pv.shape()[0], pv.shape()[1]);
        let mut m = Tensor::zeros(&[b, t, 1]);
        for bi in 0..b {
            let row = &pv.data()[bi * t..(bi + 1) * t];
            let kept = crate::relative_keep(row, beta);
            for (ti, &k) in kept.iter().enumerate() {
                m.data_mut()[bi * t + ti] = if k { 1.0 } else { 0.0 };
            }
        }
        g.constant(m)
    }

    /// Zero out dropped positions: `h_seq ⊙ expand(mask)`.
    pub fn apply_mask(&self, g: &mut Graph, h_seq: Var, mask: Var) -> Var {
        let ones = g.constant(Tensor::ones(&[1, self.dim]));
        let expanded = g.matmul(mask, ones); // B×T×d
        g.mul(h_seq, expanded)
    }

    /// The correlation supervision behind explicit denoising (paper §I:
    /// "each item is relevant with the sequence's next interaction"): a
    /// detached soft label per position, `y_t = σ(h_t · h_target / √d)`,
    /// that the keep probability is regressed onto during training. Without
    /// this signal the gate only learns through high-variance mask-sampling
    /// gradients and never separates noise from clean items.
    pub fn correlation_targets(&self, g: &mut Graph, h_seq: Var, target_emb: Var) -> Var {
        let (b, t, d) = g.value(h_seq).dims3();
        let tgt = g.reshape(target_emb, &[b, d, 1]);
        let dots = g.matmul(h_seq, tgt); // B×T×1
        let dots = g.reshape(dots, &[b, t]);
        let dots = g.scale(dots, 1.0 / (d as f32).sqrt());
        let y = g.sigmoid(dots);
        g.detach(y)
    }

    /// Mean squared error between keep probabilities and the correlation
    /// targets — the auxiliary gate loss.
    pub fn gate_loss(&self, g: &mut Graph, probs: Var, y: Var) -> Var {
        let d = g.sub(probs, y);
        let sq = g.mul(d, d);
        g.mean_all(sq)
    }
}

/// The full HSD model: embeddings + core + BERT4Rec backbone (as in the
/// original paper's experiments).
pub struct Hsd {
    /// Trainable parameters.
    pub store: ParamStore,
    item_emb: Embedding,
    user_emb: Embedding,
    /// The reusable denoising core.
    pub core: HsdCore,
    backbone: Bert4RecEncoder,
    dim: usize,
    num_items: usize,
    /// Current Gumbel temperature (annealed during training).
    pub tau: f32,
    /// Multiplicative τ decay applied every `anneal_every` steps.
    pub tau_decay: f32,
    /// Steps between τ anneals (paper: every 40 batches).
    pub anneal_every: u64,
    /// Floor for τ.
    pub tau_min: f32,
    steps: u64,
    /// Dropout on embeddings during training.
    pub dropout: f32,
    /// Weight of the correlation gate loss.
    pub gate_weight: f32,
}

impl Hsd {
    /// Build HSD for a catalogue of `num_items` items and `num_users` users.
    pub fn new(num_users: usize, num_items: usize, dim: usize, max_len: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(seed);
        let item_emb = Embedding::new(&mut store, "item", num_items + 1, dim, &mut rng);
        let user_emb = Embedding::new(&mut store, "user", num_users, dim, &mut rng);
        let core = HsdCore::new(&mut store, "hsd", dim, &mut rng);
        let backbone = Bert4RecEncoder::new(&mut store, dim, max_len, 2, 2, &mut rng);
        Hsd {
            store,
            item_emb,
            user_emb,
            core,
            backbone,
            dim,
            num_items,
            tau: 1.0,
            tau_decay: 0.98,
            anneal_every: 40,
            tau_min: 0.1,
            steps: 0,
            dropout: 0.1,
            gate_weight: 1.0,
        }
    }

    fn score_repr(&self, g: &mut Graph, bind: &Binding, h_s: Var) -> Var {
        let table = self.item_emb.table(bind);
        let tt = g.transpose_last(table);
        let logits = g.matmul(h_s, tt);
        let mut mask = Tensor::zeros(&[self.num_items + 1]);
        mask.data_mut()[0] = -1e9;
        let mv = g.constant(mask);
        g.add_bcast(logits, mv)
    }

    fn forward(&self, g: &mut Graph, bind: &Binding, batch: &Batch, rng: Option<&mut Rng>) -> Var {
        let b = batch.len();
        let t = batch.seq_len;
        let mut h = self.item_emb.lookup_seq(g, bind, &batch.items, b, t);
        let train = rng.is_some();
        if let Some(rng) = rng {
            if self.dropout > 0.0 {
                let mask = rng.dropout_mask(g.value(h).len(), self.dropout);
                h = g.dropout_with_mask(h, mask);
            }
            let u = self.user_emb.lookup(g, bind, &batch.users);
            let probs = self.core.keep_probs(g, bind, h, u);
            let cal = self
                .core
                .calibrate(g, probs, crate::RELATIVE_KEEP_BETA, 8.0);
            let mask = self.core.sample_mask(g, rng, cal, self.tau);
            h = self.core.apply_mask(g, h, mask);
        }
        if !train {
            let u = self.user_emb.lookup(g, bind, &batch.users);
            let probs = self.core.keep_probs(g, bind, h, u);
            let mask = self.core.hard_mask(g, probs);
            h = self.core.apply_mask(g, h, mask);
        }
        let h_s = self.backbone.encode(g, bind, h);
        self.score_repr(g, bind, h_s)
    }
}

impl RecModel for Hsd {
    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn loss(&self, g: &mut Graph, bind: &Binding, batch: &Batch, rng: &mut Rng) -> Var {
        let b = batch.len();
        let t = batch.seq_len;
        let mut h = self.item_emb.lookup_seq(g, bind, &batch.items, b, t);
        if self.dropout > 0.0 {
            let mask = rng.dropout_mask(g.value(h).len(), self.dropout);
            h = g.dropout_with_mask(h, mask);
        }
        let u = self.user_emb.lookup(g, bind, &batch.users);
        let probs = self.core.keep_probs(g, bind, h, u);
        let cal = self
            .core
            .calibrate(g, probs, crate::RELATIVE_KEEP_BETA, 8.0);
        let mask = self.core.sample_mask(g, rng, cal, self.tau);
        let h_masked = self.core.apply_mask(g, h, mask);
        let h_s = self.backbone.encode(g, bind, h_masked);
        let logits = self.score_repr(g, bind, h_s);
        let logp = g.log_softmax_last(logits);
        let picked = g.pick_per_row(logp, &batch.targets);
        let mean = g.mean_all(picked);
        let ce = g.neg(mean);
        // Correlation supervision of the keep gate (see HsdCore docs).
        let tgt = self.item_emb.lookup(g, bind, &batch.targets);
        let y = self.core.correlation_targets(g, h, tgt);
        let gl = self.core.gate_loss(g, probs, y);
        let gl = g.scale(gl, self.gate_weight);
        g.add(ce, gl)
    }

    fn eval_scores(&self, g: &mut Graph, bind: &Binding, batch: &Batch) -> Var {
        self.forward(g, bind, batch, None)
    }

    fn after_step(&mut self) {
        self.steps += 1;
        if self.steps.is_multiple_of(self.anneal_every) {
            self.tau = (self.tau * self.tau_decay).max(self.tau_min);
        }
    }

    fn model_name(&self) -> String {
        "HSD".into()
    }
}

impl crate::Denoiser for Hsd {
    fn keep_decisions(&self, seq: &[usize], user: usize) -> Vec<bool> {
        crate::relative_keep(&self.keep_scores(seq, user), crate::RELATIVE_KEEP_BETA)
    }

    fn keep_scores(&self, seq: &[usize], user: usize) -> Vec<f32> {
        let mut g = Graph::new();
        let bind = self.store.bind_all(&mut g);
        let h = self.item_emb.lookup_seq(&mut g, &bind, seq, 1, seq.len());
        let u = self.user_emb.lookup(&mut g, &bind, &[user]);
        let probs = self.core.keep_probs(&mut g, &bind, h, u);
        g.value(probs).data().to_vec()
    }

    fn denoiser_dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Denoiser;

    fn toy_batch() -> Batch {
        Batch {
            users: vec![0, 1],
            items: vec![1, 2, 3, 4, 5, 6],
            seq_len: 3,
            targets: vec![4, 1],
            noise: None,
        }
    }

    #[test]
    fn keep_probs_in_unit_interval() {
        let m = Hsd::new(4, 10, 8, 20, 0);
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        let h = m.item_emb.lookup_seq(&mut g, &bind, &[1, 2, 3, 4], 1, 4);
        let u = m.user_emb.lookup(&mut g, &bind, &[0]);
        let p = m.core.keep_probs(&mut g, &bind, h, u);
        assert_eq!(g.value(p).shape(), &[1, 4]);
        assert!(g.value(p).data().iter().all(|&x| x > 0.0 && x < 1.0));
    }

    #[test]
    fn sampled_mask_is_binary() {
        let m = Hsd::new(4, 10, 8, 20, 1);
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        let mut rng = Rng::seed(0);
        let h = m.item_emb.lookup_seq(&mut g, &bind, &[1, 2, 3, 4, 5], 1, 5);
        let u = m.user_emb.lookup(&mut g, &bind, &[0]);
        let p = m.core.keep_probs(&mut g, &bind, h, u);
        let mask = m.core.sample_mask(&mut g, &mut rng, p, 1.0);
        for &v in g.value(mask).data() {
            assert!(v.abs() < 1e-6 || (v - 1.0).abs() < 1e-6, "mask value {v}");
        }
    }

    #[test]
    fn masking_zeroes_dropped_rows() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(2);
        let core = HsdCore::new(&mut store, "c", 4, &mut rng);
        let mut g = Graph::new();
        let _bind = store.bind_all(&mut g);
        let h = g.constant(Tensor::ones(&[1, 3, 4]));
        let mask = g.constant(Tensor::new(vec![1.0, 0.0, 1.0], &[1, 3, 1]));
        let out = core.apply_mask(&mut g, h, mask);
        let v = g.value(out).data();
        assert_eq!(&v[0..4], &[1.0; 4]);
        assert_eq!(&v[4..8], &[0.0; 4]);
        assert_eq!(&v[8..12], &[1.0; 4]);
    }

    #[test]
    fn calibrate_matches_relative_rule() {
        // σ(κ(p/mean − β)) > 0.5 ⇔ p > β·mean — the hard mask and the
        // calibrated sampling probabilities must agree on the decision
        // boundary.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(0);
        let core = HsdCore::new(&mut store, "c", 4, &mut rng);
        let mut g = Graph::new();
        let _bind = store.bind_all(&mut g);
        let raw = vec![0.5f32, 0.5, 0.1, 0.4, 0.55];
        let p = g.constant(Tensor::new(raw.clone(), &[1, 5]));
        let cal = core.calibrate(&mut g, p, crate::RELATIVE_KEEP_BETA, 8.0);
        let rule = crate::relative_keep(&raw, crate::RELATIVE_KEEP_BETA);
        for (cv, keep) in g.value(cal).data().iter().zip(rule) {
            assert_eq!(
                *cv > 0.5,
                keep,
                "calibrated {cv} disagrees with rule {keep}"
            );
        }
    }

    #[test]
    fn calibrate_is_scale_invariant() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(1);
        let core = HsdCore::new(&mut store, "c", 4, &mut rng);
        let mut g = Graph::new();
        let _bind = store.bind_all(&mut g);
        let raw = vec![0.5f32, 0.2, 0.9, 0.4];
        let a = g.constant(Tensor::new(raw.clone(), &[1, 4]));
        let b = g.constant(Tensor::new(raw.iter().map(|x| x * 0.01).collect(), &[1, 4]));
        let ca = core.calibrate(&mut g, a, 0.6, 8.0);
        let cb = core.calibrate(&mut g, b, 0.6, 8.0);
        for (x, y) in g.value(ca).data().iter().zip(g.value(cb).data()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn correlation_targets_are_detached_soft_labels() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(2);
        let core = HsdCore::new(&mut store, "c", 4, &mut rng);
        let mut g = Graph::new();
        let _bind = store.bind_all(&mut g);
        let h = g.param(Tensor::ones(&[1, 3, 4]));
        let tgt = g.param(Tensor::ones(&[1, 4]));
        let y = core.correlation_targets(&mut g, h, tgt);
        assert!(g.value(y).data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Detached: supervising on y must not push gradients into h or tgt
        // through the label side.
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert!(grads.get(h).is_none());
        assert!(grads.get(tgt).is_none());
    }

    #[test]
    fn tau_anneals_after_steps() {
        let mut m = Hsd::new(4, 10, 8, 20, 3);
        m.anneal_every = 2;
        let t0 = m.tau;
        m.after_step();
        assert_eq!(m.tau, t0);
        m.after_step();
        assert!(m.tau < t0);
    }

    #[test]
    fn end_to_end_loss_and_grads() {
        let m = Hsd::new(4, 10, 8, 20, 4);
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        let mut rng = Rng::seed(5);
        let loss = m.loss(&mut g, &bind, &toy_batch(), &mut rng);
        assert!(g.value(loss).item().is_finite());
        let grads = g.backward(loss);
        // Gradients must reach both the denoising core and the embeddings.
        assert!(grads.get(bind.var(m.item_emb.weight())).is_some());
        assert!(grads.get(bind.var(m.user_emb.weight())).is_some());
    }

    #[test]
    fn keep_decisions_shape() {
        let m = Hsd::new(4, 10, 8, 20, 6);
        let d = m.keep_decisions(&[1, 2, 3, 4, 5, 6, 7], 2);
        assert_eq!(d.len(), 7);
    }

    #[test]
    fn eval_scores_deterministic() {
        let m = Hsd::new(4, 10, 8, 20, 7);
        let run = || {
            let mut g = Graph::new();
            let bind = m.store.bind_all(&mut g);
            let s = m.eval_scores(&mut g, &bind, &toy_batch());
            g.value(s).data().to_vec()
        };
        assert_eq!(run(), run());
    }
}
