//! # ssdrec-denoise
//!
//! The five denoising / debiasing baselines the paper compares against
//! (Table IV): FMLP-Rec (implicit), DSAN, HSD, STEAM (explicit), and DCRec
//! (debiased contrastive) — plus the post-paper [`Mgsd`] (MGSD-WSS), a
//! multi-granularity denoiser whose gate is weakly supervised by the
//! synthetic generator's noise labels (DESIGN.md §15). All implement the
//! shared [`RecModel`](ssdrec_models::RecModel) trainer interface plus the
//! [`Denoiser`] trait, which exposes keep/drop decisions for the Fig. 1 OUP
//! experiment.

#![warn(missing_docs)]

pub mod dcrec;
pub mod dsan;
pub mod fmlp;
pub mod hsd;
pub mod mgsd;
pub mod steam;

pub use dcrec::DcRec;
pub use dsan::Dsan;
pub use fmlp::FmlpRec;
pub use hsd::{Hsd, HsdCore};
pub use mgsd::Mgsd;
pub use steam::Steam;

/// A model that makes (or declines to make) explicit keep/drop decisions
/// over a raw sequence — the interface the OUP measurement drives.
pub trait Denoiser: ssdrec_models::RecModel {
    /// Deterministic keep (true) / drop (false) decision per position of
    /// `seq` for `user`. Implicit methods keep everything by construction.
    fn keep_decisions(&self, seq: &[usize], user: usize) -> Vec<bool>;

    /// Continuous keep score per position (higher = more likely kept);
    /// implicit methods return all-ones. Used for threshold-free
    /// diagnostics like noise/clean score separation.
    fn keep_scores(&self, seq: &[usize], user: usize) -> Vec<f32> {
        self.keep_decisions(seq, user)
            .into_iter()
            .map(|k| if k { 1.0 } else { 0.0 })
            .collect()
    }

    /// Representation width (diagnostics).
    fn denoiser_dim(&self) -> usize;
}

/// Relative keep rule shared by the explicit denoisers: a position is
/// dropped when its keep score falls well below the sequence's own mean
/// (`score < beta * mean`). This makes the decision invariant to the
/// absolute calibration of the score (a product of sigmoids concentrates
/// wherever its priors put it) while preserving the ordering the model
/// learned.
pub fn relative_keep(scores: &[f32], beta: f32) -> Vec<bool> {
    if scores.is_empty() {
        return Vec::new();
    }
    let mean: f32 = scores.iter().sum::<f32>() / scores.len() as f32;
    let threshold = beta * mean;
    scores.iter().map(|&s| s >= threshold).collect()
}

/// The default `beta` used by [`relative_keep`] across the workspace.
pub const RELATIVE_KEEP_BETA: f32 = 0.6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_keep_drops_outliers_only() {
        let scores = [0.5, 0.5, 0.1, 0.5];
        let kept = relative_keep(&scores, 0.95);
        assert_eq!(kept, vec![true, true, false, true]);
    }

    #[test]
    fn relative_keep_is_scale_invariant() {
        let a = [0.5, 0.5, 0.1, 0.5];
        let b: Vec<f32> = a.iter().map(|x| x * 0.01).collect();
        assert_eq!(relative_keep(&a, 0.95), relative_keep(&b, 0.95));
    }

    #[test]
    fn relative_keep_uniform_keeps_all() {
        let kept = relative_keep(&[0.3; 6], 0.95);
        assert!(kept.iter().all(|&k| k));
    }

    #[test]
    fn relative_keep_empty() {
        assert!(relative_keep(&[], 0.95).is_empty());
    }
}
