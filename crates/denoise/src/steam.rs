//! STEAM [29]: a self-correcting sequential recommender. The corrector is
//! trained on randomly corrupted sequences to detect corruptions; at
//! denoising time, detected positions are removed (masked).
//!
//! Substrate note: STEAM's corrector emits keep / delete / insert decisions,
//! where insert changes sequence length — incompatible with dense batched
//! tensors. The corruption here is *replacement* (a random item overwrites a
//! position) and the corrector is a per-position keep/delete classifier; the
//! self-supervised "reconstruct the original sequence" signal is preserved.

use ssdrec_data::Batch;
use ssdrec_tensor::nn::{Embedding, Linear};
use ssdrec_tensor::{Binding, Graph, ParamStore, Rng, Tensor, Var};

use ssdrec_models::{Bert4RecEncoder, RecModel, SeqEncoder};

/// The STEAM model.
pub struct Steam {
    /// Trainable parameters.
    pub store: ParamStore,
    item_emb: Embedding,
    encoder: Bert4RecEncoder,
    /// Per-position corruption detector (logit per position).
    detector: Linear,
    dim: usize,
    num_items: usize,
    /// Probability a position is corrupted during training.
    pub corrupt_prob: f64,
    /// Weight of the detection loss relative to the recommendation loss.
    pub detect_weight: f32,
    /// Dropout on embeddings during training.
    pub dropout: f32,
}

impl Steam {
    /// Build the model.
    pub fn new(num_items: usize, dim: usize, max_len: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(seed);
        let item_emb = Embedding::new(&mut store, "item", num_items + 1, dim, &mut rng);
        let encoder = Bert4RecEncoder::new(&mut store, dim, max_len, 2, 2, &mut rng);
        let detector = Linear::new(&mut store, "steam.detector", dim, 1, &mut rng);
        Steam {
            store,
            item_emb,
            encoder,
            detector,
            dim,
            num_items,
            corrupt_prob: 0.2,
            detect_weight: 0.5,
            dropout: 0.1,
        }
    }

    /// Encode IDs into per-position states `B×T×d` *including positional
    /// information* (the corrector reads contextualised states).
    fn contextual_states(
        &self,
        g: &mut Graph,
        bind: &Binding,
        ids: &[usize],
        b: usize,
        t: usize,
    ) -> (Var, Var) {
        let h = self.item_emb.lookup_seq(g, bind, ids, b, t);
        // Reuse the encoder's transformer stack per position by encoding the
        // whole sequence and reading per-position states: Bert4RecEncoder
        // returns only the last state, so recompute the stack here via its
        // public pieces is not possible — instead the detector reads the
        // Bi-directional *embedding context*: mean of the sequence + item.
        let mean = g.mean_time(h); // B×d
        let mean3 = g.stack_time(&vec![mean; t]);
        let ctx = g.add(h, mean3);
        (h, ctx)
    }

    /// Per-position corruption logits `B×T` from contextual states.
    fn detect_logits(&self, g: &mut Graph, bind: &Binding, ctx: Var) -> Var {
        let (b, t, _d) = g.value(ctx).dims3();
        let l = self.detector.forward(g, bind, ctx); // B×T×1
        g.reshape(l, &[b, t])
    }

    fn score_repr(&self, g: &mut Graph, bind: &Binding, h_s: Var) -> Var {
        let table = self.item_emb.table(bind);
        let tt = g.transpose_last(table);
        let logits = g.matmul(h_s, tt);
        let mut mask = Tensor::zeros(&[self.num_items + 1]);
        mask.data_mut()[0] = -1e9;
        let mv = g.constant(mask);
        g.add_bcast(logits, mv)
    }

    /// Mask positions whose detector probability exceeds 0.5 (delete).
    fn apply_keep_mask(&self, g: &mut Graph, h: Var, det_logits: Var) -> Var {
        let pv = g.value(det_logits).clone();
        let (b, t) = (pv.shape()[0], pv.shape()[1]);
        let keep = pv.map(|l| if l <= 0.0 { 1.0 } else { 0.0 }); // σ(l) ≤ 0.5
        let mask = g.constant(keep.reshaped(&[b, t, 1]));
        let ones = g.constant(Tensor::ones(&[1, self.dim]));
        let expanded = g.matmul(mask, ones);
        g.mul(h, expanded)
    }
}

impl RecModel for Steam {
    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn loss(&self, g: &mut Graph, bind: &Binding, batch: &Batch, rng: &mut Rng) -> Var {
        let b = batch.len();
        let t = batch.seq_len;
        // Corrupt: replace random positions with random items.
        let mut ids = batch.items.clone();
        let mut corrupted = vec![0.0f32; b * t];
        for (i, id) in ids.iter_mut().enumerate() {
            if rng.bernoulli(self.corrupt_prob) {
                let mut repl = rng.below(self.num_items) + 1;
                if repl == *id {
                    repl = repl % self.num_items + 1;
                }
                *id = repl;
                corrupted[i] = 1.0;
            }
        }

        let (mut h, ctx) = self.contextual_states(g, bind, &ids, b, t);
        if self.dropout > 0.0 {
            let mask = rng.dropout_mask(g.value(h).len(), self.dropout);
            h = g.dropout_with_mask(h, mask);
        }
        let det = self.detect_logits(g, bind, ctx); // B×T logits

        // Detection loss: BCE with logits against the corruption labels.
        // BCE(l, y) = softplus(l) − y·l  (numerically via ln(1+e^l)).
        let labels = g.constant(Tensor::new(corrupted, &[b, t]));
        let el = g.exp(det);
        let one_pl = g.add_scalar(el, 1.0);
        let softplus = g.ln(one_pl);
        let yl = g.mul(labels, det);
        let bce_mat = g.sub(softplus, yl);
        let bce = g.mean_all(bce_mat);

        // Recommendation loss on the corrected (masked) sequence.
        let h_corr = self.apply_keep_mask(g, h, det);
        let h_s = self.encoder.encode(g, bind, h_corr);
        let logits = self.score_repr(g, bind, h_s);
        let logp = g.log_softmax_last(logits);
        let picked = g.pick_per_row(logp, &batch.targets);
        let ce_mean = g.mean_all(picked);
        let ce = g.neg(ce_mean);

        let wbce = g.scale(bce, self.detect_weight);
        g.add(ce, wbce)
    }

    fn eval_scores(&self, g: &mut Graph, bind: &Binding, batch: &Batch) -> Var {
        let b = batch.len();
        let t = batch.seq_len;
        let (h, ctx) = self.contextual_states(g, bind, &batch.items, b, t);
        let det = self.detect_logits(g, bind, ctx);
        let h_corr = self.apply_keep_mask(g, h, det);
        let h_s = self.encoder.encode(g, bind, h_corr);
        self.score_repr(g, bind, h_s)
    }

    fn model_name(&self) -> String {
        "STEAM".into()
    }
}

impl crate::Denoiser for Steam {
    fn keep_decisions(&self, seq: &[usize], _user: usize) -> Vec<bool> {
        // STEAM's detector is trained with explicit corruption labels, so
        // its absolute 0.5 threshold is meaningful (unlike the calibration-
        // free inconsistency products of HSD/SSDRec).
        let mut g = Graph::new();
        let bind = self.store.bind_all(&mut g);
        let (_h, ctx) = self.contextual_states(&mut g, &bind, seq, 1, seq.len());
        let det = self.detect_logits(&mut g, &bind, ctx);
        g.value(det).data().iter().map(|&l| l <= 0.0).collect()
    }

    fn keep_scores(&self, seq: &[usize], _user: usize) -> Vec<f32> {
        let mut g = Graph::new();
        let bind = self.store.bind_all(&mut g);
        let (_h, ctx) = self.contextual_states(&mut g, &bind, seq, 1, seq.len());
        let det = self.detect_logits(&mut g, &bind, ctx);
        // Keep score = 1 − σ(corruption logit).
        g.value(det)
            .data()
            .iter()
            .map(|&l| 1.0 - 1.0 / (1.0 + (-l).exp()))
            .collect()
    }

    fn denoiser_dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Denoiser;

    fn toy_batch() -> Batch {
        Batch {
            users: vec![0, 1],
            items: vec![1, 2, 3, 4, 5, 6],
            seq_len: 3,
            targets: vec![4, 1],
            noise: None,
        }
    }

    #[test]
    fn loss_is_finite() {
        let m = Steam::new(10, 8, 20, 0);
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        let mut rng = Rng::seed(1);
        let loss = m.loss(&mut g, &bind, &toy_batch(), &mut rng);
        assert!(g.value(loss).item().is_finite());
    }

    #[test]
    fn detector_receives_gradients() {
        let m = Steam::new(10, 8, 20, 1);
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        let mut rng = Rng::seed(2);
        let loss = m.loss(&mut g, &bind, &toy_batch(), &mut rng);
        let grads = g.backward(loss);
        assert!(grads.get(bind.var(m.detector.weight())).is_some());
    }

    #[test]
    fn eval_shape() {
        let m = Steam::new(10, 8, 20, 2);
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        let s = m.eval_scores(&mut g, &bind, &toy_batch());
        assert_eq!(g.value(s).shape(), &[2, 11]);
    }

    #[test]
    fn keep_decisions_length() {
        let m = Steam::new(10, 8, 20, 3);
        assert_eq!(m.keep_decisions(&[1, 2, 3, 4], 0).len(), 4);
    }

    #[test]
    fn corruption_changes_training_ids() {
        // With corrupt_prob = 1, every position must flip.
        let mut m = Steam::new(10, 8, 20, 4);
        m.corrupt_prob = 1.0;
        let batch = toy_batch();
        let mut rng = Rng::seed(5);
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        // Indirect check: the loss still computes (all-corrupted labels).
        let loss = m.loss(&mut g, &bind, &batch, &mut rng);
        assert!(g.value(loss).item().is_finite());
    }
}
