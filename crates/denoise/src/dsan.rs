//! DSAN [23]: dual sparse attention network — explicit denoising via a
//! *virtual target item* whose sparse attention over the sequence zeroes out
//! (i.e. removes) irrelevant items.
//!
//! The original uses α-entmax for sparsity; here sparsity is realised as a
//! thresholded-renormalised softmax (weights below `γ / T` are cut to exactly
//! zero and the rest renormalised), which preserves the defining property —
//! exact zeros — while staying inside the substrate's op set.

use ssdrec_data::Batch;
use ssdrec_tensor::nn::{Embedding, Linear};
use ssdrec_tensor::{Binding, Graph, ParamStore, Rng, Tensor, Var};

use ssdrec_models::RecModel;

/// The DSAN model.
pub struct Dsan {
    /// Trainable parameters.
    pub store: ParamStore,
    item_emb: Embedding,
    /// The learnable virtual target embedding.
    virtual_target: ssdrec_tensor::ParamRef,
    wq: Linear,
    wk: Linear,
    out: Linear,
    dim: usize,
    num_items: usize,
    /// Sparsity threshold factor: weights below `gamma / T` are dropped.
    pub gamma: f32,
    /// Dropout on embeddings during training.
    pub dropout: f32,
}

impl Dsan {
    /// Build the model.
    pub fn new(num_items: usize, dim: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(seed);
        let item_emb = Embedding::new(&mut store, "item", num_items + 1, dim, &mut rng);
        let virtual_target = store.add_xavier("dsan.vt", &[1, dim], &mut rng);
        let wq = Linear::new_no_bias(&mut store, "dsan.wq", dim, dim, &mut rng);
        let wk = Linear::new_no_bias(&mut store, "dsan.wk", dim, dim, &mut rng);
        let out = Linear::new(&mut store, "dsan.out", 2 * dim, dim, &mut rng);
        Dsan {
            store,
            item_emb,
            virtual_target,
            wq,
            wk,
            out,
            dim,
            num_items,
            gamma: 0.5,
            dropout: 0.1,
        }
    }

    /// Sparse attention weights of the virtual target over the sequence:
    /// softmax, hard-threshold at `γ/T`, renormalise. Returns `B×T`.
    fn sparse_attention(&self, g: &mut Graph, bind: &Binding, h_seq: Var) -> Var {
        let (b, t, _d) = g.value(h_seq).dims3();
        let vt = bind.var(self.virtual_target); // 1×d
        let q = self.wq.forward(g, bind, vt); // 1×d
        let k = self.wk.forward(g, bind, h_seq); // B×T×d
        let kt = g.transpose_last(k); // B×d×T
        let scores = g.matmul(q, kt); // (1×d)x(B×d×T) → B×1×T
        let scores = g.scale(scores, 1.0 / (self.dim as f32).sqrt());
        let scores = g.reshape(scores, &[b, t]);
        let soft = g.softmax_last(scores);

        // Hard threshold (non-differentiable mask, like entmax's support
        // selection), then renormalise differentiably over the kept support.
        let thresh = self.gamma / t as f32;
        let sv = g.value(soft).clone();
        let mask_t = sv.map(|w| if w >= thresh { 1.0 } else { 0.0 });
        let mask = g.constant(mask_t);
        let kept = g.mul(soft, mask);
        let sums = g.sum_last(kept); // B
        let sums = g.add_scalar(sums, 1e-9);
        let sums3 = g.reshape(sums, &[b, 1]);
        let ones = g.constant(Tensor::ones(&[1, t]));
        let denom = g.matmul(sums3, ones); // B×T tiled row sums
        g.div(kept, denom)
    }

    fn forward(&self, g: &mut Graph, bind: &Binding, batch: &Batch, rng: Option<&mut Rng>) -> Var {
        let b = batch.len();
        let t = batch.seq_len;
        let mut h = self.item_emb.lookup_seq(g, bind, &batch.items, b, t);
        if let Some(rng) = rng {
            if self.dropout > 0.0 {
                let mask = rng.dropout_mask(g.value(h).len(), self.dropout);
                h = g.dropout_with_mask(h, mask);
            }
        }
        let attn = self.sparse_attention(g, bind, h); // B×T
        let a3 = g.reshape(attn, &[b, 1, t]);
        let agg = g.matmul(a3, h); // B×1×d
        let agg = g.reshape(agg, &[b, self.dim]);
        let last = g.select_time(h, t - 1);
        let cat = g.concat_last(&[agg, last]);
        let h_s = self.out.forward(g, bind, cat);
        let table = self.item_emb.table(bind);
        let tt = g.transpose_last(table);
        let logits = g.matmul(h_s, tt);
        let mut mask = Tensor::zeros(&[self.num_items + 1]);
        mask.data_mut()[0] = -1e9;
        let mv = g.constant(mask);
        g.add_bcast(logits, mv)
    }

    /// The sparse-attention support for one sequence (true = kept).
    pub fn attention_support(&self, seq: &[usize]) -> Vec<bool> {
        let batch = Batch {
            users: vec![0],
            items: seq.to_vec(),
            seq_len: seq.len(),
            targets: vec![seq[seq.len() - 1]],
            noise: None,
        };
        let mut g = Graph::new();
        let bind = self.store.bind_all(&mut g);
        let h = self
            .item_emb
            .lookup_seq(&mut g, &bind, &batch.items, 1, batch.seq_len);
        let attn = self.sparse_attention(&mut g, &bind, h);
        g.value(attn).data().iter().map(|&w| w > 0.0).collect()
    }
}

impl RecModel for Dsan {
    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn loss(&self, g: &mut Graph, bind: &Binding, batch: &Batch, rng: &mut Rng) -> Var {
        let logits = self.forward(g, bind, batch, Some(rng));
        let logp = g.log_softmax_last(logits);
        let picked = g.pick_per_row(logp, &batch.targets);
        let mean = g.mean_all(picked);
        g.neg(mean)
    }

    fn eval_scores(&self, g: &mut Graph, bind: &Binding, batch: &Batch) -> Var {
        self.forward(g, bind, batch, None)
    }

    fn model_name(&self) -> String {
        "DSAN".into()
    }
}

impl crate::Denoiser for Dsan {
    fn keep_decisions(&self, seq: &[usize], _user: usize) -> Vec<bool> {
        self.attention_support(seq)
    }

    fn keep_scores(&self, seq: &[usize], _user: usize) -> Vec<f32> {
        let batch = Batch {
            users: vec![0],
            items: seq.to_vec(),
            seq_len: seq.len(),
            targets: vec![seq[seq.len() - 1]],
            noise: None,
        };
        let mut g = Graph::new();
        let bind = self.store.bind_all(&mut g);
        let h = self
            .item_emb
            .lookup_seq(&mut g, &bind, &batch.items, 1, batch.seq_len);
        let attn = self.sparse_attention(&mut g, &bind, h);
        g.value(attn).data().to_vec()
    }

    fn denoiser_dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Denoiser;

    fn toy_batch() -> Batch {
        Batch {
            users: vec![0, 1],
            items: vec![1, 2, 3, 4, 5, 6],
            seq_len: 3,
            targets: vec![4, 1],
            noise: None,
        }
    }

    #[test]
    fn scores_shape() {
        let m = Dsan::new(10, 8, 0);
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        let s = m.eval_scores(&mut g, &bind, &toy_batch());
        assert_eq!(g.value(s).shape(), &[2, 11]);
    }

    #[test]
    fn sparse_attention_rows_sum_to_one_over_support() {
        let m = Dsan::new(10, 8, 1);
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        let h = m.item_emb.lookup_seq(&mut g, &bind, &[1, 2, 3, 4, 5], 1, 5);
        let a = m.sparse_attention(&mut g, &bind, h);
        let row = g.value(a).data();
        let s: f32 = row.iter().sum();
        assert!((s - 1.0).abs() < 1e-4, "sum {s}");
    }

    #[test]
    fn high_gamma_produces_exact_zeros() {
        let mut m = Dsan::new(20, 8, 2);
        m.gamma = 1.0; // threshold 1/T: cuts the below-average half
        let support = m.attention_support(&[1, 5, 9, 13, 17, 3, 7, 11]);
        assert!(support.iter().any(|&k| !k), "no position was dropped");
        assert!(support.iter().any(|&k| k), "everything was dropped");
    }

    #[test]
    fn keep_decisions_match_support_length() {
        let m = Dsan::new(10, 8, 3);
        let d = m.keep_decisions(&[2, 4, 6, 8], 0);
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn loss_backprops_through_sparse_attention() {
        let m = Dsan::new(10, 8, 4);
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        let mut rng = Rng::seed(0);
        let loss = m.loss(&mut g, &bind, &toy_batch(), &mut rng);
        let grads = g.backward(loss);
        assert!(grads.get(bind.var(m.virtual_target)).is_some());
    }
}
