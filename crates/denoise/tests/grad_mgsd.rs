//! Finite-difference gradient verification of the MGSD-WSS training loss —
//! CE through the soft multi-granularity mask plus the weak-supervision
//! gate loss — under both kernel backends, with and without ground-truth
//! noise labels (the labelled branch regresses onto constants, the
//! unlabelled branch onto detached correlation targets).

use ssdrec_data::Batch;
use ssdrec_denoise::Mgsd;
use ssdrec_models::RecModel;
use ssdrec_tensor::{fd_check_all_params, with_each_backend, Binding, ParamStore, Rng};

fn toy_batch(noise: Option<Vec<bool>>) -> Batch {
    Batch {
        users: vec![0, 1, 2],
        items: vec![1, 2, 3, 4, 5, 6, 7, 8, 1, 3, 5, 7, 2, 4, 6, 8, 1, 2],
        seq_len: 6,
        targets: vec![5, 2, 8],
        noise,
    }
}

fn check(mut model: Mgsd, noise: Option<Vec<bool>>) {
    let batch = toy_batch(noise);
    // `loss` reads parameters only through the graph binding, so the store
    // can be moved out of the model for the duration of the check. The
    // internal RNG is reseeded per call, so the dropout mask is identical
    // across FD perturbations. The seed and the small step are chosen so
    // no central difference straddles a ReLU kink in the backbone.
    let mut store = std::mem::replace(&mut model.store, ParamStore::new());
    with_each_backend(|_| {
        fd_check_all_params(&mut store, 1e-3, 2e-3, |g, bind: &Binding| {
            let mut rng = Rng::seed(17);
            model.loss(g, bind, &batch, &mut rng)
        });
    });
    model.store = store;
}

#[test]
fn mgsd_loss_gradients_weakly_supervised() {
    // Generator labels present: the gate regresses onto *constant* keep
    // targets, so the full CE + gate loss is differentiable end-to-end and
    // finite differences see the whole thing. 6 positions × 3 users, a mix
    // of noise and clean in every segment.
    check(
        Mgsd::new(3, 8, 4, 6, 13),
        Some(vec![
            false, true, false, false, true, false, // user 0
            true, false, false, true, false, false, // user 1
            false, false, true, false, false, true, // user 2
        ]),
    );
}

#[test]
fn mgsd_loss_gradients_unlabelled_mask_path() {
    // Without labels the gate regresses onto *detached* correlation targets
    // (stop-gradient soft labels), whose movement finite differences would
    // see but the tape — by design — must not. Zeroing the gate weight
    // removes that term, leaving the fully differentiable part of the
    // unlabelled loss: CE through the soft item × segment keep mask, which
    // is exactly the path this test pins down.
    let mut model = Mgsd::new(3, 8, 4, 6, 13);
    model.ws_weight = 0.0;
    check(model, None);
}
