//! Property-based tests of the shared denoising machinery (the sixth
//! property suite), running on the in-workspace `ssdrec-testkit` framework.

use ssdrec_testkit::{gens, property};

use ssdrec_denoise::{relative_keep, Denoiser, FmlpRec, Mgsd, RELATIVE_KEEP_BETA};

property! {
    cases = 64;

    /// One keep decision per position, and the empty sequence maps to the
    /// empty decision vector.
    fn relative_keep_preserves_length(scores in gens::vecs(gens::f32s(0.0, 1.0), 0, 24)) {
        let kept = relative_keep(&scores, RELATIVE_KEEP_BETA);
        assert_eq!(kept.len(), scores.len());
    }

    /// The decision is invariant to positive rescaling of the scores —
    /// the property that makes the rule robust to sigmoid-product
    /// calibration drift.
    fn relative_keep_scale_invariant(
        scores in gens::vecs(gens::f32s(0.01, 1.0), 1, 19),
        scale in gens::f32s(0.05, 20.0),
    ) {
        let scaled: Vec<f32> = scores.iter().map(|s| s * scale).collect();
        assert_eq!(
            relative_keep(&scores, RELATIVE_KEEP_BETA),
            relative_keep(&scaled, RELATIVE_KEEP_BETA),
        );
    }

    /// Uniform scores are all kept for any beta ≤ 1: no position sits below
    /// the sequence's own mean.
    fn relative_keep_uniform_keeps_all(
        s in gens::f32s(0.01, 1.0),
        len in gens::usizes(1, 20),
        beta in gens::f32s(0.0, 1.0),
    ) {
        let kept = relative_keep(&vec![s; len], beta);
        assert!(kept.iter().all(|&k| k));
    }

    /// Lowering beta only ever keeps more: the kept set is monotone
    /// (anti-monotone in the threshold).
    fn relative_keep_monotone_in_beta(
        scores in gens::vecs(gens::f32s(0.0, 1.0), 1, 19),
        b_lo in gens::f32s(0.0, 0.5),
        b_hi in gens::f32s(0.5, 1.0),
    ) {
        let loose = relative_keep(&scores, b_lo);
        let strict = relative_keep(&scores, b_hi);
        for (l, s) in loose.iter().zip(&strict) {
            assert!(*l || !*s, "kept under strict beta but dropped under loose");
        }
    }

    /// The best-scored position always survives for beta ≤ 1 (max ≥ mean ≥
    /// beta·mean on non-negative scores).
    fn relative_keep_never_drops_argmax(
        scores in gens::vecs(gens::f32s(0.0, 1.0), 1, 19),
        beta in gens::f32s(0.0, 1.0),
    ) {
        let kept = relative_keep(&scores, beta);
        let argmax = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(kept[argmax]);
    }

    /// Implicit denoisers (FMLP-Rec) keep every position by construction and
    /// report unit keep scores — the contract the OUP measurement relies on.
    fn implicit_denoiser_keeps_everything(
        seq in gens::vecs(gens::usizes(1, 12), 0, 9),
        user in gens::usizes(0, 4),
        seed in gens::u64s(),
    ) {
        let model = FmlpRec::new(12, 4, 10, 1, seed);
        let kept = model.keep_decisions(&seq, user);
        assert_eq!(kept.len(), seq.len());
        assert!(kept.iter().all(|&k| k));
        assert!(model.keep_scores(&seq, user).iter().all(|&s| s == 1.0));
    }

    /// The multi-granularity denoiser yields one finite keep probability in
    /// (0, 1] per position (a product of two sigmoids), one decision per
    /// position, and maps the empty sequence to empty outputs.
    fn mgsd_scores_are_positional_probabilities(
        seq in gens::vecs(gens::usizes(1, 12), 0, 9),
        user in gens::usizes(0, 4),
        seed in gens::u64s(),
    ) {
        let model = Mgsd::new(5, 12, 4, 10, seed);
        let scores = model.keep_scores(&seq, user);
        assert_eq!(scores.len(), seq.len());
        assert!(scores.iter().all(|s| s.is_finite() && *s > 0.0 && *s <= 1.0));
        let kept = model.keep_decisions(&seq, user);
        assert_eq!(kept.len(), seq.len());
    }

    /// Segment-level attenuation is shared within a segment, so scores can
    /// only differ across positions through the item-level head — and the
    /// relative-keep rule always preserves the argmax position.
    fn mgsd_never_drops_best_position(
        seq in gens::vecs(gens::usizes(1, 12), 1, 9),
        user in gens::usizes(0, 4),
        seed in gens::u64s(),
    ) {
        let model = Mgsd::new(5, 12, 4, 10, seed);
        let scores = model.keep_scores(&seq, user);
        let kept = model.keep_decisions(&seq, user);
        let argmax = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(kept[argmax]);
    }
}
