//! A criterion-style bench timer with no external dependencies.
//!
//! Each benchmark auto-calibrates an iteration count so that one sample takes
//! a measurable slice of wall-clock time, runs a warm-up, then collects a
//! fixed number of samples and reports per-iteration min / median / p95 /
//! max. Results are printed as a table and written as JSON to
//! `target/ssdrec-bench/<harness>.json` so CI can diff runs.
//!
//! Usage inside a `[[bench]]` target with `harness = false`:
//!
//! ```no_run
//! use ssdrec_testkit::bench::Harness;
//!
//! fn main() {
//!     let mut h = Harness::new("kernels");
//!     let xs: Vec<f32> = (0..1024).map(|i| i as f32).collect();
//!     h.bench("sum_1024", || xs.iter().sum::<f32>());
//!     h.finish();
//! }
//! ```
//!
//! Environment knobs: `SSDREC_BENCH_SAMPLES` (default 20),
//! `SSDREC_BENCH_SAMPLE_MS` (target milliseconds per sample, default 10),
//! `SSDREC_BENCH_FAST=1` (1 sample, 1 iteration — used by CI to smoke-test
//! bench binaries without paying measurement time).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Measurement configuration (normally read from the environment).
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Samples collected per benchmark.
    pub samples: usize,
    /// Target wall-clock duration of one sample.
    pub sample_target: Duration,
    /// Warm-up duration before sampling.
    pub warmup: Duration,
}

impl Default for BenchConfig {
    fn default() -> Self {
        let fast = std::env::var("SSDREC_BENCH_FAST")
            .map(|v| v == "1")
            .unwrap_or(false);
        if fast {
            return BenchConfig {
                samples: 1,
                sample_target: Duration::ZERO,
                warmup: Duration::ZERO,
            };
        }
        let samples = std::env::var("SSDREC_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(20);
        let sample_ms = std::env::var("SSDREC_BENCH_SAMPLE_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10u64);
        BenchConfig {
            samples: samples.max(1),
            sample_target: Duration::from_millis(sample_ms),
            warmup: Duration::from_millis(3 * sample_ms),
        }
    }
}

/// Per-iteration timing statistics, in nanoseconds.
#[derive(Clone, Debug)]
pub struct Stats {
    /// Benchmark id.
    pub id: String,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
    /// Number of samples.
    pub samples: usize,
    /// Fastest sample (ns / iteration).
    pub min_ns: f64,
    /// Median sample (ns / iteration).
    pub median_ns: f64,
    /// 95th-percentile sample (ns / iteration).
    pub p95_ns: f64,
    /// Slowest sample (ns / iteration).
    pub max_ns: f64,
    /// Total wall-clock spent on this benchmark (calibration + warm-up +
    /// sampling), in milliseconds.
    pub wall_clock_ms: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named collection of benchmarks sharing one config and one JSON report.
pub struct Harness {
    name: String,
    cfg: BenchConfig,
    threads: usize,
    /// `(pool_hits, pool_misses, bytes_recycled)` injected by the bench
    /// binary via [`Harness::set_pool_stats`] (testkit cannot read the
    /// tensor pool itself: the tensor crate dev-depends on testkit).
    pool: Option<(u64, u64, u64)>,
    results: Vec<Stats>,
}

impl Harness {
    /// A harness reading its config from the environment. `name` becomes the
    /// JSON file stem.
    pub fn new(name: &str) -> Self {
        // Cargo invokes bench binaries with `--bench` (and possibly filter
        // args); accept and ignore them for drop-in criterion compatibility.
        Harness::with_config(name, BenchConfig::default())
    }

    /// A harness with an explicit config (tests; exotic setups).
    pub fn with_config(name: &str, cfg: BenchConfig) -> Self {
        eprintln!("bench harness `{name}`: {} sample(s)", cfg.samples);
        // Default the reported thread count to the SSDREC_THREADS contract
        // shared with `ssdrec-runtime` (testkit must not depend on it: the
        // runtime dev-depends on testkit). Sweeping benchmarks override via
        // [`Harness::set_threads`].
        let threads = std::env::var("SSDREC_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
            .unwrap_or(1);
        Harness {
            name: name.to_string(),
            cfg,
            threads,
            pool: None,
            results: Vec::new(),
        }
    }

    /// Record the compute thread count the following benchmarks run under
    /// (reported as the `threads` field of the JSON output).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Record tensor-pool telemetry for the JSON report (`pool_hits`,
    /// `pool_misses`, `bytes_recycled`). Bench binaries read these from
    /// `ssdrec_tensor::pool::global_stats()` just before
    /// [`Harness::finish`]; un-set values are reported as 0.
    pub fn set_pool_stats(&mut self, hits: u64, misses: u64, bytes_recycled: u64) {
        self.pool = Some((hits, misses, bytes_recycled));
    }

    /// Time `f`, which is called repeatedly; its return value is passed
    /// through [`black_box`] so the computation is not optimised away.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) -> &Stats {
        let bench_start = Instant::now();
        // Calibrate: how many iterations fill one sample target?
        let mut iters: u64 = 1;
        if !self.cfg.sample_target.is_zero() {
            loop {
                let t0 = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                let elapsed = t0.elapsed();
                if elapsed >= self.cfg.sample_target || iters >= 1 << 40 {
                    break;
                }
                // Aim straight at the target with a growth cap to converge fast
                // on both sub-ns and multi-ms workloads.
                let ratio = self.cfg.sample_target.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
                iters = (iters as f64 * ratio.clamp(1.5, 100.0)).ceil() as u64;
            }
        }

        // Warm-up.
        let warm_end = Instant::now() + self.cfg.warmup;
        while Instant::now() < warm_end {
            black_box(f());
        }

        // Sample.
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.cfg.samples);
        for _ in 0..self.cfg.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));

        let stats = Stats {
            id: id.to_string(),
            iters_per_sample: iters,
            samples: per_iter_ns.len(),
            min_ns: per_iter_ns[0],
            median_ns: percentile(&per_iter_ns, 0.5),
            p95_ns: percentile(&per_iter_ns, 0.95),
            max_ns: *per_iter_ns.last().unwrap(),
            wall_clock_ms: bench_start.elapsed().as_secs_f64() * 1e3,
        };
        eprintln!(
            "  {:<40} median {:>12}   p95 {:>12}   ({} iters/sample)",
            stats.id,
            fmt_ns(stats.median_ns),
            fmt_ns(stats.p95_ns),
            stats.iters_per_sample
        );
        self.results.push(stats);
        self.results.last().unwrap()
    }

    /// All stats collected so far.
    pub fn results(&self) -> &[Stats] {
        &self.results
    }

    /// Peak resident set size of this process in bytes, read from
    /// `VmHWM` in `/proc/self/status`. Returns 0 where procfs is
    /// unavailable (non-Linux) so the JSON field is always present.
    pub fn peak_rss_bytes() -> u64 {
        let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
            return 0;
        };
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                // Format: "VmHWM:    123456 kB".
                let kb = rest
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse::<u64>()
                    .unwrap_or(0);
                return kb * 1024;
            }
        }
        0
    }

    /// Render the JSON report (hand-rolled: ids contain no characters that
    /// need escaping beyond quotes/backslashes, but escape them anyway).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"harness\": \"{}\",\n", escape(&self.name)));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        let (ph, pm, pb) = self.pool.unwrap_or((0, 0, 0));
        out.push_str(&format!("  \"pool_hits\": {ph},\n"));
        out.push_str(&format!("  \"pool_misses\": {pm},\n"));
        out.push_str(&format!("  \"bytes_recycled\": {pb},\n"));
        out.push_str(&format!(
            "  \"peak_rss_bytes\": {},\n",
            Harness::peak_rss_bytes()
        ));
        out.push_str("  \"benchmarks\": [\n");
        for (i, s) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"iters_per_sample\": {}, \"samples\": {}, \
                 \"min_ns\": {:.1}, \"median_ns\": {:.1}, \"p95_ns\": {:.1}, \"max_ns\": {:.1}, \
                 \"wall_clock_ms\": {:.3}}}{}\n",
                escape(&s.id),
                s.iters_per_sample,
                s.samples,
                s.min_ns,
                s.median_ns,
                s.p95_ns,
                s.max_ns,
                s.wall_clock_ms,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `target/ssdrec-bench/<name>.json` under the workspace target
    /// directory. Harnesses dropped without calling this only lose the JSON
    /// file.
    pub fn finish(&mut self) {
        let dir = target_dir().join("ssdrec-bench");
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!(
                "bench harness `{}`: cannot create {}: {e}",
                self.name,
                dir.display()
            );
            return;
        }
        let path = dir.join(format!("{}.json", self.name));
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => eprintln!("bench harness `{}`: wrote {}", self.name, path.display()),
            Err(e) => eprintln!(
                "bench harness `{}`: cannot write {}: {e}",
                self.name,
                path.display()
            ),
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The cargo target directory: `CARGO_TARGET_DIR` when set, otherwise
/// `target/` under the outermost ancestor holding a `Cargo.lock` (cargo runs
/// bench binaries with cwd = the *package* dir, so a bare relative `target`
/// would scatter reports across `crates/*/target/`). Falls back to
/// cwd-relative `target`.
fn target_dir() -> std::path::PathBuf {
    if let Some(dir) = std::env::var_os("CARGO_TARGET_DIR") {
        return std::path::PathBuf::from(dir);
    }
    if let Ok(cwd) = std::env::current_dir() {
        if let Some(root) = cwd
            .ancestors()
            .filter(|a| a.join("Cargo.lock").is_file())
            .last()
        {
            return root.join("target");
        }
    }
    std::path::PathBuf::from("target")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> BenchConfig {
        BenchConfig {
            samples: 5,
            sample_target: Duration::from_micros(200),
            warmup: Duration::ZERO,
        }
    }

    #[test]
    fn collects_ordered_stats() {
        let mut h = Harness::with_config("unit", fast_cfg());
        let s = h.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(s.min_ns > 0.0);
        assert!(s.min_ns <= s.median_ns);
        assert!(s.median_ns <= s.p95_ns);
        assert!(s.p95_ns <= s.max_ns);
        assert_eq!(s.samples, 5);
        assert!(s.iters_per_sample >= 1);
    }

    #[test]
    fn json_contains_all_benchmarks() {
        let mut h = Harness::with_config("unit_json", fast_cfg());
        h.bench("a", || 1 + 1);
        h.bench("b", || 2 + 2);
        let json = h.to_json();
        assert!(json.contains("\"harness\": \"unit_json\""));
        assert!(json.contains("\"id\": \"a\""));
        assert!(json.contains("\"id\": \"b\""));
        assert!(json.contains("median_ns"));
        assert!(json.contains("\"threads\": "));
        assert!(json.contains("wall_clock_ms"));
    }

    #[test]
    fn threads_field_is_overridable_and_wall_clock_positive() {
        let mut h = Harness::with_config("unit_threads", fast_cfg());
        h.set_threads(4);
        let s = h.bench("spin", || std::hint::black_box(3u64).wrapping_mul(7));
        assert!(s.wall_clock_ms > 0.0);
        assert!(h.to_json().contains("\"threads\": 4,"));
    }

    #[test]
    fn pool_fields_default_to_zero_and_are_settable() {
        let mut h = Harness::with_config("unit_pool", fast_cfg());
        h.bench("a", || 1 + 1);
        let json = h.to_json();
        assert!(json.contains("\"pool_hits\": 0,"));
        assert!(json.contains("\"pool_misses\": 0,"));
        assert!(json.contains("\"bytes_recycled\": 0,"));
        h.set_pool_stats(12, 3, 4096);
        let json = h.to_json();
        assert!(json.contains("\"pool_hits\": 12,"));
        assert!(json.contains("\"pool_misses\": 3,"));
        assert!(json.contains("\"bytes_recycled\": 4096,"));
    }

    #[test]
    fn peak_rss_is_positive_on_linux_and_in_json() {
        let rss = Harness::peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(rss > 0, "VmHWM should be readable on Linux");
        }
        let mut h = Harness::with_config("unit_rss", fast_cfg());
        h.bench("a", || 1 + 1);
        assert!(h.to_json().contains("\"peak_rss_bytes\": "));
    }

    #[test]
    fn percentile_of_known_data() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&data, 0.5), 3.0);
        assert_eq!(percentile(&data, 0.0), 1.0);
        assert_eq!(percentile(&data, 1.0), 5.0);
    }

    #[test]
    fn fast_mode_runs_single_iteration() {
        let cfg = BenchConfig {
            samples: 1,
            sample_target: Duration::ZERO,
            warmup: Duration::ZERO,
        };
        let mut calls = 0u32;
        let mut h = Harness::with_config("unit_fast", cfg);
        h.bench("once", || calls += 1);
        // 1 calibration-free sample of 1 iteration (black_box keeps the call).
        assert!(calls >= 1 && calls <= 2, "calls = {calls}");
    }
}
