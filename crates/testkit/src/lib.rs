//! # ssdrec-testkit
//!
//! The workspace's zero-dependency test substrate. The offline build
//! environment cannot fetch registry crates, so everything the reproduction
//! needs for correctness tooling lives here, implemented from scratch on the
//! standard library:
//!
//! * [`rng`] — a deterministic `xoshiro256**` generator (SplitMix64 seeding)
//!   with the full sampling surface the workspace uses: uniform, integer
//!   ranges, normal (Box–Muller), Gumbel, Bernoulli, dropout masks, shuffle,
//!   choice, weighted sampling and independent [`Rng::split`] child streams.
//!   This is a **runtime** dependency of `ssdrec-tensor` and `ssdrec-data`,
//!   not just a test helper — every stochastic component of the stack draws
//!   from it.
//! * [`prop`] — a minimal property-testing framework (the
//!   [`property!`](crate::property) macro): seeded generation, configurable
//!   case counts, greedy input shrinking on failure.
//! * [`gradcheck`] — [`check_grads`], central finite-difference verification
//!   of analytic gradients, used to validate the autograd tape layer by
//!   layer.
//! * [`bench`] — a criterion-style timer ([`bench::Harness`]) with warm-up,
//!   auto-calibrated iteration counts, median/p95 reporting and JSON output
//!   for `harness = false` bench targets.
//! * [`fault`] — test-side hooks for the `ssdrec-faults` injection runtime:
//!   the [`fault::FaultPlan`] builder (programmatic or parsed from the
//!   `SSDREC_FAULTS` spec format), an RAII arming guard that serialises
//!   chaos tests behind a global lock, and fire-count assertions.
//!
//! The workspace-level invariant this crate exists to protect:
//! `CARGO_NET_OFFLINE=true cargo build --release && cargo test -q` passes
//! with **zero** registry dependencies (`scripts/ci.sh` enforces the
//! deny-list).

#![warn(missing_docs)]

pub mod bench;
pub mod fault;
pub mod gradcheck;
pub mod prop;
pub mod rng;

pub use gradcheck::{check_grads, GradReport};
pub use prop::{forall, gens, Config, Gen};
pub use rng::{splitmix64, Rng};
