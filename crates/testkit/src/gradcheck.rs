//! Finite-difference gradient verification.
//!
//! [`check_grads`] compares an analytic gradient (e.g. from the autograd
//! tape) against central finite differences of the loss, parameter by
//! parameter. It is deliberately framework-agnostic: the caller supplies a
//! closure evaluating the loss at an arbitrary flat parameter vector, so the
//! same helper verifies any layer of any crate without this crate depending
//! on the tensor substrate.

/// Outcome of a successful gradient check.
#[derive(Clone, Debug)]
pub struct GradReport {
    /// Number of scalar parameters checked.
    pub checked: usize,
    /// Largest absolute numeric-vs-analytic difference seen.
    pub max_abs_err: f32,
    /// Largest relative error seen (normalised by `1 + max(|num|, |ana|)`).
    pub max_rel_err: f32,
    /// Index of the worst parameter.
    pub worst_index: usize,
}

/// Verify `analytic` against central finite differences of `f` around
/// `params`.
///
/// For every index `i`, the numeric derivative
/// `(f(params + eps·eᵢ) − f(params − eps·eᵢ)) / (2·eps)` must satisfy
/// `|num − ana| ≤ tol · (1 + max(|num|, |ana|))` — absolute tolerance for
/// small gradients, relative for large ones.
///
/// Returns a [`GradReport`] on success; on the first violated index returns
/// an error describing both values. `f` must be deterministic (freeze any
/// stochastic state such as dropout masks before checking).
pub fn check_grads<F>(
    mut f: F,
    params: &[f32],
    analytic: &[f32],
    eps: f32,
    tol: f32,
) -> Result<GradReport, String>
where
    F: FnMut(&[f32]) -> f32,
{
    assert!(eps > 0.0 && tol > 0.0, "eps and tol must be positive");
    assert_eq!(
        params.len(),
        analytic.len(),
        "parameter/gradient length mismatch: {} vs {}",
        params.len(),
        analytic.len()
    );
    let mut work = params.to_vec();
    let mut report = GradReport {
        checked: params.len(),
        max_abs_err: 0.0,
        max_rel_err: 0.0,
        worst_index: 0,
    };
    for i in 0..params.len() {
        work[i] = params[i] + eps;
        let lp = f(&work);
        work[i] = params[i] - eps;
        let lm = f(&work);
        work[i] = params[i];
        let num = (lp - lm) / (2.0 * eps);
        let ana = analytic[i];
        if !num.is_finite() || !ana.is_finite() {
            return Err(format!(
                "non-finite gradient at index {i}: numeric {num}, analytic {ana}"
            ));
        }
        let abs = (num - ana).abs();
        let rel = abs / (1.0 + num.abs().max(ana.abs()));
        if rel > tol {
            return Err(format!(
                "gradient mismatch at index {i}: numeric {num} vs analytic {ana} \
                 (abs err {abs:.3e}, rel err {rel:.3e} > tol {tol:.1e})"
            ));
        }
        if rel > report.max_rel_err {
            report.max_rel_err = rel;
            report.worst_index = i;
        }
        report.max_abs_err = report.max_abs_err.max(abs);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f(x) = Σ xᵢ², ∇f = 2x.
    #[test]
    fn accepts_correct_quadratic_gradient() {
        let params = [0.5f32, -1.25, 2.0, 0.0];
        let analytic: Vec<f32> = params.iter().map(|x| 2.0 * x).collect();
        let report = check_grads(
            |xs| xs.iter().map(|x| x * x).sum(),
            &params,
            &analytic,
            1e-3,
            1e-3,
        )
        .expect("correct gradient must pass");
        assert_eq!(report.checked, 4);
        assert!(report.max_rel_err <= 1e-3);
    }

    #[test]
    fn rejects_wrong_gradient() {
        let params = [1.0f32, 2.0];
        let wrong = [2.0f32, 3.0]; // true grad is [2, 4]
        let err = check_grads(
            |xs| xs.iter().map(|x| x * x).sum(),
            &params,
            &wrong,
            1e-3,
            1e-3,
        )
        .expect_err("wrong gradient must fail");
        assert!(err.contains("index 1"), "{err}");
    }

    /// Non-trivial coupling: f(x) = sin(x₀)·x₁ + exp(x₀·x₁).
    #[test]
    fn accepts_coupled_nonlinear_gradient() {
        let p = [0.3f32, -0.7];
        let e = (p[0] * p[1]).exp();
        let analytic = [p[0].cos() * p[1] + p[1] * e, p[0].sin() + p[0] * e];
        check_grads(
            |x| x[0].sin() * x[1] + (x[0] * x[1]).exp(),
            &p,
            &analytic,
            1e-3,
            1e-3,
        )
        .expect("analytic gradient is exact");
    }

    #[test]
    fn rejects_non_finite() {
        let err = check_grads(|x| 1.0 / x[0], &[0.0f32], &[0.0], 1e-3, 1e-3)
            .expect_err("division through zero must be flagged");
        assert!(
            err.contains("non-finite") || err.contains("mismatch"),
            "{err}"
        );
    }
}
