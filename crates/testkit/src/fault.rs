//! Test-side hooks for the `ssdrec-faults` injection runtime: a
//! [`FaultPlan`] builder (programmatic or parsed from the `SSDREC_FAULTS`
//! spec format), an RAII arming guard that serialises fault tests behind a
//! global lock, and fire-count assertions.
//!
//! ```
//! use ssdrec_testkit::fault::{assert_fired_exactly, FaultPlan};
//!
//! let armed = FaultPlan::new().error("demo.site", 1).arm();
//! assert!(ssdrec_faults::point("demo.site").is_err());
//! assert_fired_exactly("demo.site", 1);
//! drop(armed); // disarms and releases the fault-test lock
//! ```

use std::sync::{Mutex, MutexGuard};

use ssdrec_faults::{FaultKind, FaultSpec};

/// Serialises every armed plan across test threads: the fault registry is
/// process-global, so two tests arming plans concurrently would observe
/// each other's counters.
static FAULT_TEST_LOCK: Mutex<()> = Mutex::new(());

/// A builder for a set of fault specs, armed all at once via
/// [`FaultPlan::arm`].
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse a plan from the `SSDREC_FAULTS` spec format
    /// (`site:kind:nth,...`, kinds `error` | `panic` | `delay<MS>`).
    pub fn parse(spec: &str) -> Result<Self, String> {
        Ok(FaultPlan {
            specs: FaultSpec::parse_list(spec)?,
        })
    }

    /// Add an error fault at `site`, firing on its `nth` (1-based) hit.
    pub fn error(mut self, site: &str, nth: u64) -> Self {
        self.specs.push(FaultSpec {
            site: site.into(),
            kind: FaultKind::Error,
            nth,
        });
        self
    }

    /// Add a `ms`-millisecond delay fault at `site` on its `nth` hit.
    pub fn delay_ms(mut self, site: &str, ms: u64, nth: u64) -> Self {
        self.specs.push(FaultSpec {
            site: site.into(),
            kind: FaultKind::DelayMs(ms),
            nth,
        });
        self
    }

    /// Add a panic fault at `site` on its `nth` hit.
    pub fn panic(mut self, site: &str, nth: u64) -> Self {
        self.specs.push(FaultSpec {
            site: site.into(),
            kind: FaultKind::Panic,
            nth,
        });
        self
    }

    /// Number of specs in the plan.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Arm the plan, returning a guard that holds the global fault-test
    /// lock and disarms everything when dropped.
    pub fn arm(self) -> ArmedFaults {
        let lock = FAULT_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        ssdrec_faults::arm(self.specs);
        ArmedFaults { _lock: lock }
    }
}

/// RAII guard for an armed [`FaultPlan`]: serialises concurrent fault tests
/// and disarms the runtime (clearing every counter) on drop.
pub struct ArmedFaults {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for ArmedFaults {
    fn drop(&mut self) {
        ssdrec_faults::disarm();
    }
}

/// Assert that exactly `n` faults fired at `site`, with a diagnostic that
/// includes the site's hit count and the full registry snapshot.
#[track_caller]
pub fn assert_fired_exactly(site: &str, n: u64) {
    let fired = ssdrec_faults::fired(site);
    assert_eq!(
        fired,
        n,
        "fault site {site:?} fired {fired} time(s), expected {n} \
         ({} armed hits; registry: {:?})",
        ssdrec_faults::hits(site),
        ssdrec_faults::snapshot()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes_and_arms() {
        let plan = FaultPlan::new()
            .error("tk.a", 1)
            .delay_ms("tk.b", 5, 1)
            .panic("tk.c", 2);
        assert_eq!(plan.len(), 3);
        let _armed = plan.arm();
        assert!(ssdrec_faults::is_armed());
        assert!(ssdrec_faults::point("tk.a").is_err());
        assert!(ssdrec_faults::point("tk.b").is_ok()); // delayed, not failed
        assert!(ssdrec_faults::point("tk.c").is_ok()); // fires on hit 2
        assert_fired_exactly("tk.a", 1);
        assert_fired_exactly("tk.b", 1);
        assert_fired_exactly("tk.c", 0);
    }

    #[test]
    fn parse_matches_env_format() {
        let plan = FaultPlan::parse("tk.p:error:2, tk.q:delay10:1").unwrap();
        assert_eq!(plan.len(), 2);
        let _armed = plan.arm();
        assert!(ssdrec_faults::point("tk.p").is_ok());
        assert!(ssdrec_faults::point("tk.p").is_err());
        assert_fired_exactly("tk.p", 1);
        assert!(FaultPlan::parse("nope").is_err());
    }

    #[test]
    fn guard_disarms_on_drop() {
        {
            let _armed = FaultPlan::new().error("tk.drop", 1).arm();
            assert!(ssdrec_faults::is_armed());
        }
        assert!(!ssdrec_faults::is_armed());
        assert!(ssdrec_faults::point("tk.drop").is_ok());
        assert_eq!(ssdrec_faults::fired("tk.drop"), 0);
    }

    #[test]
    #[should_panic(expected = "fired 0 time(s), expected 1")]
    fn assertion_reports_mismatch() {
        let _armed = FaultPlan::new().error("tk.never", 99).arm();
        assert_fired_exactly("tk.never", 1);
    }
}
