//! Deterministic random-number generation for the whole workspace.
//!
//! # Stream-stability contract
//!
//! The generator is **frozen**: `xoshiro256**` seeded through `SplitMix64`,
//! with the draw algorithms below implemented in this file and nowhere else.
//! The same seed produces the same draw sequence on every platform and across
//! PRs — golden tests (exact metric values, checkpoint round-trips) depend on
//! it. Changing the core generator, the seeding scheme, or the order in which
//! any sampling helper consumes raw `u64`s is a **breaking change** that
//! invalidates every recorded experiment in `results/` and must be called out
//! in `CHANGES.md` together with refreshed golden values.
//!
//! Within that contract:
//!
//! * [`Rng::seed`] expands a 64-bit seed into the 256-bit xoshiro state with
//!   SplitMix64 (the construction recommended by the xoshiro authors), so
//!   nearby seeds (0, 1, 2, …) still give well-separated streams.
//! * [`Rng::split`] derives an independent child stream by seeding a fresh
//!   generator from the parent's next draw; parent and child may afterwards be
//!   drawn from in any order without affecting each other.
//! * Every helper documents how many raw draws it consumes so that call sites
//!   can reason about stream alignment.

/// SplitMix64 step: the seed-expansion PRNG (public for tests and for hashing
/// small keys into seeds).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded `xoshiro256**` generator with the sampling helpers the workspace
/// needs. Not cryptographic; excellent statistical quality for simulation.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// A new deterministic generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Rng { s }
    }

    /// The next raw 64-bit draw (`xoshiro256**` scrambler). One draw.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derive an independent child generator (one draw from the parent).
    /// Useful for giving each module its own stream without coupling draw
    /// orders.
    pub fn split(&mut self) -> Rng {
        Rng::seed(self.next_u64())
    }

    /// The raw 256-bit generator state, for checkpointing. Restoring it with
    /// [`Rng::from_state`] resumes the draw sequence exactly where it left
    /// off (no draws are consumed by either call).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a state captured with [`Rng::state`].
    pub fn from_state(s: [u64; 4]) -> Rng {
        assert!(s != [0; 4], "xoshiro256** state must not be all-zero");
        Rng { s }
    }

    /// Uniform `f32` in `[0, 1)` from the top 24 bits. One draw.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)` from the top 53 bits. One draw.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "uniform: empty range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform_f64: empty range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` via rejection sampling (unbiased).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        let n = n as u64;
        // Reject draws from the incomplete top interval so every residue is
        // equally likely.
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n) as usize;
            }
        }
    }

    /// Uniform integer in the **inclusive** range `[lo, hi]`.
    pub fn between(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "between: empty range [{lo}, {hi}]");
        lo + self.below(hi - lo + 1)
    }

    /// Standard normal via Box–Muller (two draws).
    pub fn normal(&mut self) -> f32 {
        let u1 = f32::EPSILON.max(self.next_f32());
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Standard Gumbel(0,1) sample: `−ln(−ln U)`. One draw.
    pub fn gumbel(&mut self) -> f32 {
        let u = f32::EPSILON.max(self.next_f32());
        -(-u.ln()).ln()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`). One draw.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// An inverted-dropout mask: each element is `0` with probability `p`,
    /// else `1/(1-p)`. `len` draws.
    pub fn dropout_mask(&mut self, len: usize, p: f32) -> Vec<f32> {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        let keep = 1.0 - p;
        (0..len)
            .map(|_| if self.next_f32() < p { 0.0 } else { 1.0 / keep })
            .collect()
    }

    /// Fisher–Yates shuffle (`len-1` draws, independent of element values).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// A uniformly chosen element of a non-empty slice. One draw.
    pub fn choice<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choice on empty slice");
        &xs[self.below(xs.len())]
    }

    /// Sample an index from unnormalised non-negative `f32` weights.
    ///
    /// # Panics
    /// Panics if all weights are zero or the slice is empty.
    pub fn weighted_index(&mut self, weights: &[f32]) -> usize {
        let total: f32 = weights.iter().sum();
        assert!(
            total > 0.0 && !weights.is_empty(),
            "weighted_index on empty/zero weights"
        );
        let mut r = self.uniform(0.0, total);
        for (i, &w) in weights.iter().enumerate() {
            if r < w {
                return i;
            }
            r -= w;
        }
        weights.len() - 1
    }

    /// Sample an index from unnormalised non-negative `f64` weights.
    ///
    /// # Panics
    /// Panics if all weights are zero or the slice is empty.
    pub fn weighted_index_f64(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && !weights.is_empty(),
            "weighted_index_f64 on empty/zero weights"
        );
        let mut r = self.uniform_f64(0.0, total);
        for (i, &w) in weights.iter().enumerate() {
            if r < w {
                return i;
            }
            r -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::seed(7);
        let mut b = Rng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn golden_stream_is_frozen() {
        // First three raw draws for seed 0 — the stream-stability contract in
        // concrete numbers. If this test fails, the generator changed and
        // every recorded experiment is invalid.
        let mut r = Rng::seed(0);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768
            ]
        );
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = Rng::seed(1);
        let mut b = Rng::seed(2);
        let da: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let db: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = Rng::seed(3);
        let mut child = parent.split();
        // Draw orders must not couple: interleaving produces the same child
        // sequence as drawing the child alone.
        let solo: Vec<u64> = {
            let mut p = Rng::seed(3);
            let mut c = p.split();
            (0..6).map(|_| c.next_u64()).collect()
        };
        let mut interleaved = Vec::new();
        for _ in 0..6 {
            parent.next_u64();
            interleaved.push(child.next_u64());
        }
        assert_eq!(solo, interleaved);
    }

    #[test]
    fn uniform_in_range() {
        let mut r = Rng::seed(11);
        for _ in 0..1000 {
            let x = r.uniform(-2.5, 4.0);
            assert!((-2.5..4.0).contains(&x));
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = Rng::seed(5);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[r.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn between_is_inclusive() {
        let mut r = Rng::seed(6);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..500 {
            let v = r.between(3, 5);
            assert!((3..=5).contains(&v));
            lo_seen |= v == 3;
            hi_seen |= v == 5;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn normal_has_roughly_zero_mean_unit_var() {
        let mut r = Rng::seed(42);
        let xs: Vec<f32> = (0..20_000).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn gumbel_mean_near_euler_mascheroni() {
        let mut r = Rng::seed(3);
        let n = 20_000;
        let mean = (0..n).map(|_| r.gumbel()).sum::<f32>() / n as f32;
        assert!((mean - 0.5772).abs() < 0.05, "gumbel mean {mean}");
    }

    #[test]
    fn bernoulli_frequency_tracks_p() {
        let mut r = Rng::seed(8);
        let hits = (0..10_000).filter(|_| r.bernoulli(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn dropout_mask_scales_kept() {
        let mut r = Rng::seed(1);
        let m = r.dropout_mask(1_000, 0.5);
        assert!(m.iter().all(|&x| x == 0.0 || (x - 2.0).abs() < 1e-6));
        let kept = m.iter().filter(|&&x| x > 0.0).count();
        assert!((300..700).contains(&kept));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed(5);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choice_is_uniformish() {
        let mut r = Rng::seed(13);
        let xs = [10, 20, 30];
        let mut counts = [0usize; 3];
        for _ in 0..3_000 {
            counts[(*r.choice(&xs) / 10 - 1) as usize] += 1;
        }
        assert!(
            counts.iter().all(|&c| (700..1_300).contains(&c)),
            "{counts:?}"
        );
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = Rng::seed(9);
        let mut counts = [0usize; 3];
        for _ in 0..6_000 {
            counts[r.weighted_index(&[1.0, 0.0, 2.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0]);
        let mut counts64 = [0usize; 2];
        for _ in 0..2_000 {
            counts64[r.weighted_index_f64(&[3.0, 1.0])] += 1;
        }
        assert!(counts64[0] > counts64[1]);
    }
}
