//! A minimal property-testing framework: seeded generation, configurable
//! case counts and greedy input shrinking, with no external dependencies.
//!
//! Tests are written through the [`property!`](crate::property) macro:
//!
//! ```
//! use ssdrec_testkit::{gens, property};
//!
//! property! {
//!     cases = 64;
//!
//!     /// Reversal is an involution.
//!     fn reverse_involution(xs in gens::vecs(gens::usizes(0, 100), 0, 20)) {
//!         let mut ys = xs.clone();
//!         ys.reverse();
//!         ys.reverse();
//!         assert_eq!(xs, ys);
//!     }
//! }
//! # fn main() {}
//! ```
//!
//! On failure the framework re-runs the property on smaller candidate inputs
//! (greedy first-improvement shrinking) and reports the smallest input that
//! still fails, together with the seed needed to replay it.
//!
//! Generators built by [`gens`](crate::gens) combinators shrink; generators
//! built with [`Gen::from_fn`] or [`Gen::map`] do not (the framework then
//! reports the original failing input).

use std::panic::{self, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::Once;

use crate::rng::Rng;

/// Configuration for one [`forall`] run.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases.
    pub cases: u32,
    /// Master seed; each case derives its own child stream. Overridable at
    /// run time with the `SSDREC_PROP_SEED` environment variable.
    pub seed: u64,
    /// Upper bound on shrink attempts after a failure.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        let seed = std::env::var("SSDREC_PROP_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x55D2_EC00_7E57_0001);
        Config {
            cases: 64,
            seed,
            max_shrink_iters: 2_000,
        }
    }
}

impl Config {
    /// A config with the given case count and default seed.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// A value generator paired with a shrinker.
///
/// `g` draws a value from an [`Rng`]; `s` proposes strictly "smaller"
/// candidate values for shrinking (may be empty).
#[derive(Clone)]
pub struct Gen<T> {
    g: Rc<dyn Fn(&mut Rng) -> T>,
    s: Rc<dyn Fn(&T) -> Vec<T>>,
}

impl<T: 'static> Gen<T> {
    /// A generator from explicit generate and shrink functions.
    pub fn new(g: impl Fn(&mut Rng) -> T + 'static, s: impl Fn(&T) -> Vec<T> + 'static) -> Self {
        Gen {
            g: Rc::new(g),
            s: Rc::new(s),
        }
    }

    /// A generator with no shrinking (failing inputs are reported as drawn).
    pub fn from_fn(g: impl Fn(&mut Rng) -> T + 'static) -> Self {
        Gen::new(g, |_| Vec::new())
    }

    /// Draw one value.
    pub fn generate(&self, rng: &mut Rng) -> T {
        (self.g)(rng)
    }

    /// Candidate smaller values for `v`.
    pub fn shrink(&self, v: &T) -> Vec<T> {
        (self.s)(v)
    }

    /// Transform generated values. The mapped generator does not shrink
    /// (there is no inverse to pull candidates back through).
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::from_fn(move |rng| f(self.generate(rng)))
    }
}

/// A tuple of generators usable with [`forall`].
pub trait GenSet {
    /// The tuple of generated values.
    type Value: Clone + std::fmt::Debug + 'static;
    /// Draw one value tuple.
    fn generate(&self, rng: &mut Rng) -> Self::Value;
    /// Shrink candidates: each varies a single component.
    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value>;
}

macro_rules! impl_genset {
    ($($G:ident/$v:ident/$i:tt),+) => {
        impl<$($G: Clone + std::fmt::Debug + 'static),+> GenSet for ($(Gen<$G>,)+) {
            type Value = ($($G,)+);
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$i.shrink(&v.$i) {
                        let mut tup = v.clone();
                        tup.$i = cand;
                        out.push(tup);
                    }
                )+
                out
            }
        }
    };
}

impl_genset!(A / a / 0);
impl_genset!(A / a / 0, B / b / 1);
impl_genset!(A / a / 0, B / b / 1, C / c / 2);
impl_genset!(A / a / 0, B / b / 1, C / c / 2, D / d / 3);
impl_genset!(A / a / 0, B / b / 1, C / c / 2, D / d / 3, E / e / 4);

thread_local! {
    static SUPPRESS_PANIC_OUTPUT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static HOOK_INIT: Once = Once::new();

/// Install (once, globally) a panic hook that stays silent while this thread
/// is probing a property case, so shrinking does not spam stderr. Panics on
/// other threads are unaffected.
fn install_quiet_hook() {
    HOOK_INIT.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(|f| f.get()) {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".into()
    }
}

/// Run `f` on one input, capturing a panic as `Err(message)`.
fn probe<V: Clone>(f: &mut impl FnMut(V), v: &V) -> Result<(), String> {
    SUPPRESS_PANIC_OUTPUT.with(|flag| flag.set(true));
    let r = panic::catch_unwind(AssertUnwindSafe(|| f(v.clone())));
    SUPPRESS_PANIC_OUTPUT.with(|flag| flag.set(false));
    r.map_err(|p| panic_message(&*p))
}

/// Check a property over `cfg.cases` generated inputs, shrinking any failure
/// to a locally minimal counter-example before panicking.
pub fn forall<G: GenSet>(cfg: &Config, gens: G, mut f: impl FnMut(G::Value)) {
    install_quiet_hook();
    let mut master = Rng::seed(cfg.seed);
    for case in 0..cfg.cases {
        let mut rng = master.split();
        let value = gens.generate(&mut rng);
        if let Err(first_msg) = probe(&mut f, &value) {
            let (min_value, min_msg, shrinks) =
                shrink_failure(cfg, &gens, &mut f, value, first_msg);
            panic!(
                "property failed (case {case} of {}, seed {:#x}, {shrinks} successful shrinks)\n\
                 minimal failing input: {:?}\n\
                 panic: {min_msg}\n\
                 replay with SSDREC_PROP_SEED={}",
                cfg.cases, cfg.seed, min_value, cfg.seed
            );
        }
    }
}

/// Greedy first-improvement shrink loop: adopt the first candidate that still
/// fails, restart from it, stop when no candidate fails or the iteration
/// budget is spent. Returns the minimal input, its panic message, and how
/// many shrink steps were adopted.
fn shrink_failure<G: GenSet>(
    cfg: &Config,
    gens: &G,
    f: &mut impl FnMut(G::Value),
    mut value: G::Value,
    mut msg: String,
) -> (G::Value, String, u32) {
    let mut budget = cfg.max_shrink_iters;
    let mut adopted = 0u32;
    'outer: while budget > 0 {
        for cand in gens.shrink(&value) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Err(m) = probe(f, &cand) {
                value = cand;
                msg = m;
                adopted += 1;
                continue 'outer;
            }
        }
        break; // no candidate fails: locally minimal
    }
    (value, msg, adopted)
}

/// Declare property tests: a `cases = N;` header followed by one or more
/// `fn name(binding in generator, ...) { body }` items, each expanded to a
/// `#[test]` running [`forall`]. See the [module docs](self) for an example.
#[macro_export]
macro_rules! property {
    (cases = $cases:expr;
     $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $gen:expr),+ $(,)? ) $body:block )+
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __cfg = $crate::prop::Config::with_cases($cases);
                $crate::prop::forall(&__cfg, ( $($gen,)+ ), |( $($arg,)+ )| $body);
            }
        )+
    };
}

/// Generator combinators for common types.
pub mod gens {
    use super::Gen;

    /// Shrink candidates from `v` toward `target`: the target itself, then
    /// `v` moved toward the target by `dist/2, dist/4, …, 1`. The trailing
    /// step of 1 lets greedy shrinking converge to an exact failure boundary.
    fn shrink_toward_u64(v: u64, target: u64) -> Vec<u64> {
        let mut out = Vec::new();
        if v == target {
            return out;
        }
        out.push(target);
        let mut delta = v.abs_diff(target) / 2;
        while delta > 0 {
            let cand = if v > target { v - delta } else { v + delta };
            if cand != v && cand != target && !out.contains(&cand) {
                out.push(cand);
            }
            delta /= 2;
        }
        out
    }

    /// Uniform `usize` in the half-open range `[lo, hi)`, shrinking toward
    /// `lo`.
    pub fn usizes(lo: usize, hi: usize) -> Gen<usize> {
        assert!(lo < hi, "usizes: empty range [{lo}, {hi})");
        Gen::new(
            move |rng| rng.between(lo, hi - 1),
            move |&v| {
                shrink_toward_u64(v as u64, lo as u64)
                    .into_iter()
                    .map(|x| x as usize)
                    .collect()
            },
        )
    }

    /// Uniform `u64` over the full range, shrinking toward 0.
    pub fn u64s() -> Gen<u64> {
        Gen::new(|rng| rng.next_u64(), |&v| shrink_toward_u64(v, 0))
    }

    /// Uniform `f32` in `[lo, hi)`, shrinking toward 0 clamped into range
    /// (or toward `lo` when 0 is outside the range).
    pub fn f32s(lo: f32, hi: f32) -> Gen<f32> {
        assert!(lo < hi, "f32s: empty range [{lo}, {hi})");
        Gen::new(
            move |rng| rng.uniform(lo, hi),
            move |&v| {
                let target = if (lo..hi).contains(&0.0) { 0.0 } else { lo };
                let mut out = Vec::new();
                if v != target {
                    out.push(target);
                    let half = target + (v - target) / 2.0;
                    if half != v && half != target {
                        out.push(half);
                    }
                }
                out
            },
        )
    }

    /// Uniform `f64` in `[lo, hi)`, shrinking toward 0 clamped into range.
    pub fn f64s(lo: f64, hi: f64) -> Gen<f64> {
        assert!(lo < hi, "f64s: empty range [{lo}, {hi})");
        Gen::new(
            move |rng| rng.uniform_f64(lo, hi),
            move |&v| {
                let target = if (lo..hi).contains(&0.0) { 0.0 } else { lo };
                let mut out = Vec::new();
                if v != target {
                    out.push(target);
                    let half = target + (v - target) / 2.0;
                    if half != v && half != target {
                        out.push(half);
                    }
                }
                out
            },
        )
    }

    /// Fair coin, `true` shrinking to `false`.
    pub fn bools() -> Gen<bool> {
        Gen::new(
            |rng| rng.bernoulli(0.5),
            |&v| if v { vec![false] } else { Vec::new() },
        )
    }

    /// Vector with uniformly drawn length in the **inclusive** range
    /// `[min_len, max_len]`. Shrinks by halving the length, dropping single
    /// elements, then shrinking individual elements.
    pub fn vecs<T: Clone + std::fmt::Debug + 'static>(
        elem: Gen<T>,
        min_len: usize,
        max_len: usize,
    ) -> Gen<Vec<T>> {
        assert!(min_len <= max_len, "vecs: empty length range");
        let elem_s = elem.clone();
        Gen::new(
            move |rng| {
                let len = rng.between(min_len, max_len);
                (0..len).map(|_| elem.generate(rng)).collect()
            },
            move |v: &Vec<T>| {
                let mut out: Vec<Vec<T>> = Vec::new();
                // Length shrinks (respecting the floor).
                if v.len() > min_len {
                    let half = (v.len() / 2).max(min_len);
                    if half < v.len() {
                        out.push(v[..half].to_vec());
                    }
                    for i in 0..v.len() {
                        let mut shorter = v.clone();
                        shorter.remove(i);
                        out.push(shorter);
                    }
                }
                // Element shrinks, one position at a time.
                for (i, x) in v.iter().enumerate() {
                    for cand in elem_s.shrink(x) {
                        let mut w = v.clone();
                        w[i] = cand;
                        out.push(w);
                    }
                }
                out
            },
        )
    }

    /// Vector of exactly `len` elements (element shrinking only).
    pub fn vec_exact<T: Clone + std::fmt::Debug + 'static>(
        elem: Gen<T>,
        len: usize,
    ) -> Gen<Vec<T>> {
        vecs(elem, len, len)
    }
}

#[cfg(test)]
mod tests {
    use super::gens;
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let cfg = Config::with_cases(100);
        let counter = std::cell::Cell::new(0u32);
        forall(&cfg, (gens::usizes(0, 50),), |(_n,)| {
            counter.set(counter.get() + 1);
        });
        assert_eq!(counter.get(), 100);
    }

    #[test]
    fn same_seed_same_cases() {
        let cfg = Config {
            cases: 20,
            seed: 99,
            max_shrink_iters: 0,
        };
        let mut a = Vec::new();
        forall(&cfg, (gens::u64s(),), |(v,)| a.push(v));
        let mut b = Vec::new();
        forall(&cfg, (gens::u64s(),), |(v,)| b.push(v));
        assert_eq!(a, b);
    }

    /// The acceptance-criteria shrinking demonstration: a property failing
    /// for all `n >= 10` must shrink to exactly `n == 10`, and one failing
    /// for any vector containing a large element must shrink to the single
    /// smallest such vector.
    #[test]
    fn shrinking_finds_minimal_counterexamples() {
        let cfg = Config {
            cases: 200,
            seed: 1,
            max_shrink_iters: 5_000,
        };

        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            forall(&cfg, (gens::usizes(0, 1_000),), |(n,)| {
                assert!(n < 10, "too big");
            });
        }));
        let msg = panic_message(&*r.expect_err("property must fail"));
        assert!(
            msg.contains("minimal failing input: (10,)"),
            "expected shrink to 10, got:\n{msg}"
        );

        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            forall(&cfg, (gens::vecs(gens::usizes(0, 100), 0, 30),), |(xs,)| {
                assert!(xs.iter().all(|&x| x < 50), "has large element");
            });
        }));
        let msg = panic_message(&*r.expect_err("property must fail"));
        assert!(
            msg.contains("minimal failing input: ([50],)"),
            "expected shrink to [50], got:\n{msg}"
        );
    }

    #[test]
    fn shrink_reports_original_when_unshrinkable() {
        let cfg = Config {
            cases: 5,
            seed: 7,
            max_shrink_iters: 100,
        };
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            forall(&cfg, (Gen::from_fn(|rng| rng.between(5, 9)),), |(n,)| {
                assert!(n > 100);
            });
        }));
        let msg = panic_message(&*r.expect_err("property must fail"));
        assert!(msg.contains("0 successful shrinks"), "got:\n{msg}");
    }

    #[test]
    fn multi_component_tuples_shrink_componentwise() {
        let cfg = Config {
            cases: 100,
            seed: 3,
            max_shrink_iters: 5_000,
        };
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            forall(
                &cfg,
                (gens::usizes(0, 100), gens::usizes(0, 100)),
                |(a, b)| {
                    assert!(a + b < 40);
                },
            );
        }));
        let msg = panic_message(&*r.expect_err("property must fail"));
        // Greedy shrinking lands on a minimal pair summing to exactly 40.
        let start = msg
            .find("minimal failing input: (")
            .expect("input in message")
            + "minimal failing input: (".len();
        let rest = &msg[start..];
        let end = rest.find(')').unwrap();
        let nums: Vec<usize> = rest[..end]
            .split(',')
            .map(|s| s.trim().parse().unwrap())
            .collect();
        assert_eq!(nums[0] + nums[1], 40, "non-minimal pair in:\n{msg}");
    }

    #[test]
    fn map_transforms_values() {
        let cfg = Config::with_cases(30);
        forall(&cfg, (gens::usizes(0, 10).map(|n| n * 2),), |(even,)| {
            assert_eq!(even % 2, 0);
        });
    }

    #[test]
    fn bool_and_float_gens_stay_in_range() {
        let cfg = Config::with_cases(100);
        forall(
            &cfg,
            (gens::f32s(-2.0, 3.0), gens::f64s(0.5, 1.5), gens::bools()),
            |(x, y, _b)| {
                assert!((-2.0..3.0).contains(&x));
                assert!((0.5..1.5).contains(&y));
            },
        );
    }
}
