//! Log-format edge cases: empty log, torn tail recovered by truncation,
//! CRC corruption rejected with a typed error, and replay-from-offset
//! byte-identity with full-replay-then-skip.

use std::fs;
use std::path::PathBuf;

use ssdrec_stream::{replay, LogError, LogHeader, StreamLog, HEADER_LEN, RECORD_LEN};

fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("log-format");
    fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join(format!("{tag}.sslg"));
    let _ = fs::remove_file(&path);
    path
}

const CATALOG: LogHeader = LogHeader {
    num_users: 8,
    num_items: 100,
};

fn filled(tag: &str, events: &[(usize, usize)]) -> PathBuf {
    let path = scratch(tag);
    let mut log = StreamLog::create(&path, CATALOG).expect("create");
    log.append_all(events.iter().copied()).expect("append");
    log.sync().expect("sync");
    path
}

#[test]
fn empty_log_opens_with_zero_records() {
    let path = scratch("empty");
    drop(StreamLog::create(&path, CATALOG).expect("create"));
    let (log, report) = StreamLog::open(&path).expect("open");
    assert_eq!(report.records, 0);
    assert_eq!(report.truncated_bytes, 0);
    assert_eq!(log.end(), HEADER_LEN);
    assert_eq!(log.header(), CATALOG);
    assert_eq!(
        replay(&path, HEADER_LEN, HEADER_LEN).expect("replay"),
        vec![]
    );
}

#[test]
fn append_extends_and_reopen_sees_everything() {
    let path = filled("roundtrip", &[(0, 1), (1, 2), (7, 100)]);
    let (log, report) = StreamLog::open(&path).expect("reopen");
    assert_eq!(report.records, 3);
    assert_eq!(log.end(), HEADER_LEN + 3 * RECORD_LEN);
    let events = replay(&path, HEADER_LEN, log.end()).expect("replay");
    let pairs: Vec<(usize, usize)> = events.iter().map(|e| (e.user, e.item)).collect();
    assert_eq!(pairs, vec![(0, 1), (1, 2), (7, 100)]);
}

#[test]
fn out_of_catalog_events_are_rejected() {
    let path = scratch("catalog");
    let mut log = StreamLog::create(&path, CATALOG).expect("create");
    // User past the catalog, item 0 (the pad slot), item past the catalog.
    for (u, i) in [(8, 1), (0, 0), (0, 101)] {
        match log.append(u, i) {
            Err(LogError::OutOfCatalog { user, item, .. }) => assert_eq!((user, item), (u, i)),
            other => panic!("expected OutOfCatalog for ({u}, {i}), got {other:?}"),
        }
    }
    // Nothing was written.
    assert_eq!(log.records(), 0);
}

#[test]
fn torn_tail_is_truncated_on_open() {
    let path = filled("torn", &[(0, 1), (1, 2)]);
    // Simulate a crash mid-append: half a record of garbage-free prefix.
    let mut bytes = fs::read(&path).expect("read");
    let full = bytes.clone();
    bytes.extend_from_slice(&full[HEADER_LEN as usize..HEADER_LEN as usize + 10]);
    fs::write(&path, &bytes).expect("write torn");

    let (log, report) = StreamLog::open(&path).expect("open recovers");
    assert_eq!(report.records, 2);
    assert_eq!(report.truncated_bytes, 10);
    assert_eq!(log.end(), HEADER_LEN + 2 * RECORD_LEN);
    // The file itself was truncated back to the valid prefix.
    assert_eq!(fs::metadata(&path).expect("meta").len(), log.end());
    // And appends go to the recovered end, readable afterwards.
    let mut log = log;
    log.append(3, 4).expect("append after recovery");
    let events = replay(&path, HEADER_LEN, log.end()).expect("replay");
    assert_eq!(events.len(), 3);
    assert_eq!((events[2].user, events[2].item), (3, 4));
}

#[test]
fn mid_log_crc_corruption_is_a_typed_error() {
    let path = filled("corrupt", &[(0, 1), (1, 2), (2, 3)]);
    // Flip one payload byte of the SECOND record: it is complete (not a torn
    // tail), so this must be rejected, not silently truncated.
    let mut bytes = fs::read(&path).expect("read");
    let second = (HEADER_LEN + RECORD_LEN) as usize;
    bytes[second + 5] ^= 0xFF;
    fs::write(&path, &bytes).expect("write corrupt");

    match StreamLog::open(&path) {
        Err(LogError::Corrupt { offset }) => assert_eq!(offset, HEADER_LEN + RECORD_LEN),
        other => panic!("expected Corrupt, got {:?}", other.map(|(_, r)| r)),
    }
    match replay(&path, HEADER_LEN, HEADER_LEN + 3 * RECORD_LEN) {
        Err(LogError::Corrupt { offset }) => assert_eq!(offset, HEADER_LEN + RECORD_LEN),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn corrupt_header_is_a_typed_error() {
    let path = filled("badheader", &[(0, 1)]);
    let mut bytes = fs::read(&path).expect("read");
    bytes[9] ^= 0x01; // inside num_users: header CRC no longer matches
    fs::write(&path, &bytes).expect("write");
    assert!(matches!(
        StreamLog::open(&path),
        Err(LogError::HeaderCorrupt)
    ));

    let mut bytes = fs::read(&path).expect("read");
    bytes[0] = b'X'; // magic
    fs::write(&path, &bytes).expect("write");
    assert!(matches!(StreamLog::open(&path), Err(LogError::BadMagic)));
}

#[test]
fn replay_from_mid_offset_matches_full_replay_then_skip() {
    let events: Vec<(usize, usize)> = (0..20).map(|i| (i % 8, (i % 100) + 1)).collect();
    let path = scratch("midoffset");
    let mut log = StreamLog::create(&path, CATALOG).expect("create");
    let mut offsets = vec![HEADER_LEN];
    for &(u, i) in &events {
        offsets.push(log.append(u, i).expect("append"));
    }
    let end = log.end();
    drop(log);

    let full = replay(&path, HEADER_LEN, end).expect("full replay");
    for (skip, &from) in offsets.iter().enumerate() {
        let tail = replay(&path, from, end).expect("mid replay");
        assert_eq!(
            tail,
            full[skip..],
            "replay from offset {from} (skip {skip})"
        );
    }
    // And bounded replays of interior windows agree too.
    let window = replay(&path, offsets[5], offsets[12]).expect("window");
    assert_eq!(window, full[5..12]);
}

#[test]
fn replay_rejects_unaligned_or_out_of_range_offsets() {
    let path = filled("offsets", &[(0, 1), (1, 2)]);
    let end = HEADER_LEN + 2 * RECORD_LEN;
    for bad in [0, HEADER_LEN + 1, end + RECORD_LEN] {
        match replay(&path, bad, end) {
            Err(LogError::BadOffset { offset, .. }) => assert_eq!(offset, bad),
            other => panic!("expected BadOffset for {bad}, got {other:?}"),
        }
    }
    // from > to is refused as well.
    assert!(matches!(
        replay(&path, end, HEADER_LEN),
        Err(LogError::BadOffset { .. })
    ));
}

#[test]
fn append_and_sync_fault_sites_fire() {
    use ssdrec_testkit::fault::{assert_fired_exactly, FaultPlan};
    let path = scratch("faults");
    let mut log = StreamLog::create(&path, CATALOG).expect("create");
    log.append(0, 1).expect("clean append");

    let armed = FaultPlan::new()
        .error("stream.append", 1)
        .error("stream.sync", 1)
        .arm();
    let err = log.append(1, 2).expect_err("injected append fault");
    assert!(matches!(err, LogError::Io(_)), "got {err:?}");
    let err = log.sync().expect_err("injected sync fault");
    assert!(matches!(err, LogError::Io(_)), "got {err:?}");
    assert_fired_exactly("stream.append", 1);
    assert_fired_exactly("stream.sync", 1);
    drop(armed);

    // The failed append wrote nothing: the log still has exactly one record.
    log.append(1, 2).expect("append after fault");
    log.sync().expect("sync after fault");
    drop(log);
    let (log, report) = StreamLog::open(&path).expect("reopen");
    assert_eq!(report.records, 2);
    assert_eq!(report.truncated_bytes, 0);
    drop(log);
}
