//! Incremental-training driver and serve-side version loaders.
//!
//! A retrain round is a deterministic function of `(log prefix, spec,
//! base version)`: replay the merged history up to the round's pinned
//! consumed offset, rebuild the split/graph/model skeleton, warm-start from
//! the base version's full training state (params, Adam moments, raw RNG
//! state), run exactly `spec.epochs` epochs, publish `v(N+1)/`, and flip
//! `CURRENT`. Because every input is pinned (the offset in the work
//! metadata, the knobs in the spec, the catalog in the log header), a round
//! killed at any point and re-run lands on byte-identical published
//! parameters — the chaos tests assert exactly that.
//!
//! Incremental rounds never early-stop (patience is set past `epochs`):
//! resuming a run that had early-stopped would otherwise keep training past
//! the stop and diverge from an uninterrupted run.

use std::fs;
use std::path::Path;

use ssdrec_core::{SsdRec, SsdRecConfig};
use ssdrec_data::{leave_one_out, truncate_to_max_len, Dataset, Interaction, Split};
use ssdrec_graph::{build_graph, GraphConfig};
use ssdrec_models::{
    load_train_state, train_with_warm_start, CheckpointConfig, TrainConfig, TrainReport,
};
use ssdrec_tensor::persist::{load_params, save_params};

use crate::log::{replay, LogHeader, StreamLog, HEADER_LEN, RECORD_LEN};
use crate::version::{CheckpointDir, RetrainSpec, VersionMeta};

/// Leave-one-out minimum sequence length (matches the offline CLI pipeline).
pub const MIN_SEQ_LEN: usize = 3;
/// Training prefixes kept per user (matches the offline CLI pipeline).
pub const MAX_TRAIN_PREFIXES: usize = 3;

/// Result of [`retrain`].
#[derive(Debug)]
pub enum RetrainOutcome {
    /// The current version already covers the whole log; nothing to do.
    UpToDate {
        /// The already-current version.
        version: u64,
    },
    /// A new version was trained and published.
    Trained(TrainedVersion),
}

/// A freshly published version.
#[derive(Debug)]
pub struct TrainedVersion {
    /// The published version number.
    pub version: u64,
    /// Log offset the version consumed up to.
    pub consumed: u64,
    /// Records newly consumed by this round (0 for the first full round).
    pub delta_records: u64,
    /// Trainer report for the round.
    pub report: TrainReport,
}

/// Build the per-user dataset from a replayed event stream.
///
/// The catalog comes from the log header, so users with no events yet keep
/// empty sequences and every replay prefix shares one ID space.
pub fn materialize(header: LogHeader, events: &[Interaction]) -> Dataset {
    let mut sequences = vec![Vec::new(); header.num_users];
    for ev in events {
        sequences[ev.user].push(ev.item);
    }
    Dataset {
        name: "stream".to_string(),
        num_users: header.num_users,
        num_items: header.num_items,
        sequences,
        noise_labels: None,
    }
}

/// Rebuild the split + model skeleton for a replayed history.
///
/// Unlike the offline CLI pipeline this applies **no k-core filter**: k-core
/// re-indexes items densely, which would re-assign embedding rows between
/// rounds and make warm starts meaningless. Only truncation to `max_len` and
/// the leave-one-out split are applied, so shapes depend solely on the fixed
/// catalog.
pub fn materialize_model(
    header: LogHeader,
    events: &[Interaction],
    spec: &RetrainSpec,
) -> Result<(Split, SsdRec), String> {
    let mut ds = materialize(header, events);
    truncate_to_max_len(&mut ds, spec.arch.max_len);
    let split = leave_one_out(&ds, MIN_SEQ_LEN, MAX_TRAIN_PREFIXES);
    let graph = build_graph(&ds, &GraphConfig::default());
    let cfg = SsdRecConfig {
        dim: spec.arch.dim,
        max_len: spec.arch.max_len,
        backbone: spec.arch.backbone,
        seed: spec.arch.seed,
        ..SsdRecConfig::default()
    };
    Ok((split, SsdRec::new(&graph, cfg)))
}

fn records_at(offset: u64) -> u64 {
    (offset - HEADER_LEN) / RECORD_LEN
}

/// Run one incremental retrain round against `log_path`, publishing into the
/// versioned checkpoint directory at `root`.
///
/// Crash-safe and idempotent: the round's target version and consumed offset
/// are pinned in `work/meta` before training starts, the trainer checkpoints
/// into `work/state.sstc` every `spec.checkpoint_every` epochs, and a killed
/// round resumes from there on the next invocation. Stale work (target ≤
/// `CURRENT`, or written under a different spec/offset against the same
/// target) is discarded.
pub fn retrain(
    log_path: &Path,
    root: &Path,
    spec: &RetrainSpec,
    verbose: bool,
) -> Result<RetrainOutcome, String> {
    if spec.epochs == 0 {
        return Err("retrain needs --epochs ≥ 1".to_string());
    }
    let (log, _) = StreamLog::open(log_path).map_err(|e| e.to_string())?;
    let header = log.header();
    let log_end = log.end();
    drop(log);

    let cd = CheckpointDir::new(root);
    cd.ensure()
        .map_err(|e| format!("create {}: {e}", root.display()))?;
    let base_version = cd.current_version()?;

    // Warm-start inputs from the base version, and its arch pin.
    let (base_consumed, warm_state) = match base_version {
        Some(v) => {
            let meta = cd.read_meta(v)?;
            if meta.spec.arch != spec.arch {
                return Err(format!(
                    "architecture mismatch with {}: checkpoint dir has {} dim {} max_len {} \
                     seed {}, retrain asked for {} dim {} max_len {} seed {}",
                    CheckpointDir::version_name(v),
                    meta.spec.arch.backbone.name(),
                    meta.spec.arch.dim,
                    meta.spec.arch.max_len,
                    meta.spec.arch.seed,
                    spec.arch.backbone.name(),
                    spec.arch.dim,
                    spec.arch.max_len,
                    spec.arch.seed,
                ));
            }
            if meta.consumed > log_end {
                return Err(format!(
                    "{} consumed offset {} is past the log end {} — was the log replaced?",
                    CheckpointDir::version_name(v),
                    meta.consumed,
                    log_end,
                ));
            }
            let state = load_train_state(cd.state_path(v))
                .map_err(|e| format!("load {}: {e}", cd.state_path(v).display()))?;
            (meta.consumed, Some(state))
        }
        None => (HEADER_LEN, None),
    };

    // Pin the round: resume in-flight work if it matches, else start fresh.
    let target_version = base_version.unwrap_or(0) + 1;
    let target_meta = VersionMeta {
        version: target_version,
        consumed: log_end,
        records: records_at(log_end),
        spec: *spec,
    };
    let resume = match cd.read_work_meta()? {
        Some(work) if work == target_meta => true,
        Some(_) => {
            // Different target/spec/offset: discard the stale round.
            fs::remove_dir_all(cd.work_dir())
                .map_err(|e| format!("clear stale {}: {e}", cd.work_dir().display()))?;
            false
        }
        None => false,
    };
    if !resume {
        if base_consumed == log_end && base_version.is_some() {
            return Ok(RetrainOutcome::UpToDate {
                version: base_version.unwrap(),
            });
        }
        fs::create_dir_all(cd.work_dir())
            .map_err(|e| format!("create {}: {e}", cd.work_dir().display()))?;
        CheckpointDir::write_meta(&cd.work_meta_path(), &target_meta)
            .map_err(|e| format!("write work meta: {e}"))?;
    }

    // Rebuild the merged world at the pinned offset.
    let events = replay(log_path, HEADER_LEN, target_meta.consumed).map_err(|e| e.to_string())?;
    let (split, mut model) = materialize_model(header, &events, spec)?;
    if split.train.is_empty() || split.valid.is_empty() {
        return Err(format!(
            "the log has too little history to train on (need users with ≥ {} events; \
             {} records over {} users)",
            MIN_SEQ_LEN + 1,
            target_meta.records,
            header.num_users,
        ));
    }

    let train_cfg = TrainConfig {
        epochs: spec.epochs,
        batch_size: spec.batch_size,
        lr: spec.lr,
        weight_decay: spec.weight_decay,
        // Incremental rounds must run exactly `epochs` epochs: early stopping
        // would break resume-equals-uninterrupted determinism.
        patience: spec.epochs + 1,
        seed: spec.arch.seed,
        verbose,
        ..TrainConfig::default()
    };
    let ckpt = CheckpointConfig {
        path: cd.work_state_path(),
        every: spec.checkpoint_every.max(1),
        resume: true,
    };
    let report = train_with_warm_start(
        &mut model,
        &split,
        &train_cfg,
        warm_state.as_ref(),
        Some(&ckpt),
    )?;

    // Publish: vN fully written (atomic per file), then CURRENT, then work/.
    let vdir = cd.version_dir(target_version);
    fs::create_dir_all(&vdir).map_err(|e| format!("create {}: {e}", vdir.display()))?;
    save_params(&model.store, cd.model_path(target_version))
        .map_err(|e| format!("publish model: {e}"))?;
    let state_bytes = fs::read(cd.work_state_path())
        .map_err(|e| format!("read {}: {e}", cd.work_state_path().display()))?;
    ssdrec_tensor::persist::atomic_write(
        &cd.state_path(target_version),
        crate::version::PUBLISH_SITE,
        |w| std::io::Write::write_all(w, &state_bytes),
    )
    .map_err(|e| format!("publish state: {e}"))?;
    CheckpointDir::write_meta(&cd.meta_path(target_version), &target_meta)
        .map_err(|e| format!("publish meta: {e}"))?;
    cd.set_current(target_version)
        .map_err(|e| format!("flip CURRENT: {e}"))?;
    let _ = fs::remove_dir_all(cd.work_dir());

    Ok(RetrainOutcome::Trained(TrainedVersion {
        version: target_version,
        consumed: target_meta.consumed,
        delta_records: records_at(target_meta.consumed) - records_at(base_consumed),
        report,
    }))
}

/// A published version loaded back into a live model, ready to serve.
pub struct LoadedVersion {
    /// The version number.
    pub version: u64,
    /// Its metadata.
    pub meta: VersionMeta,
    /// The model with the version's published parameters applied.
    pub model: SsdRec,
}

/// Load version `v` from the checkpoint directory at `root`.
///
/// The model skeleton (graph structure, embedding shapes) is rebuilt by
/// replaying `log_path` up to the version's consumed offset — the same
/// deterministic pipeline the retrain round used — then the published
/// parameters are applied over it.
pub fn load_version(log_path: &Path, root: &Path, v: u64) -> Result<LoadedVersion, String> {
    let cd = CheckpointDir::new(root);
    let meta = cd.read_meta(v)?;
    let header = crate::log::read_header(log_path).map_err(|e| e.to_string())?;
    let events = replay(log_path, HEADER_LEN, meta.consumed).map_err(|e| e.to_string())?;
    let (_, mut model) = materialize_model(header, &events, &meta.spec)?;
    load_params(&mut model.store, cd.model_path(v))
        .map_err(|e| format!("load {}: {e}", cd.model_path(v).display()))?;
    Ok(LoadedVersion {
        version: v,
        meta,
        model,
    })
}

/// Load whatever `CURRENT` points at; `None` if nothing is published yet.
pub fn load_current(log_path: &Path, root: &Path) -> Result<Option<LoadedVersion>, String> {
    match CheckpointDir::new(root).current_version()? {
        Some(v) => load_version(log_path, root, v).map(Some),
        None => Ok(None),
    }
}

/// Load `CURRENT` only if it is newer than `newer_than`.
///
/// This is the serve-side reload probe: cheap when nothing changed (one
/// small file read), a full deterministic rebuild when a new version landed.
pub fn load_newer(
    log_path: &Path,
    root: &Path,
    newer_than: u64,
) -> Result<Option<LoadedVersion>, String> {
    match CheckpointDir::new(root).current_version()? {
        Some(v) if v > newer_than => load_version(log_path, root, v).map(Some),
        _ => Ok(None),
    }
}

/// Convenience for the CLI: create a log (if missing) or open it, returning
/// the writer positioned at the end.
pub fn open_or_create_log(
    path: &Path,
    catalog: Option<LogHeader>,
) -> Result<(StreamLog, bool), String> {
    if path.exists() {
        let (log, report) = StreamLog::open(path).map_err(|e| e.to_string())?;
        if report.truncated_bytes > 0 {
            eprintln!(
                "warning: truncated {} bytes of torn tail from {}",
                report.truncated_bytes,
                path.display()
            );
        }
        Ok((log, false))
    } else {
        let header = catalog.ok_or_else(|| {
            format!(
                "{} does not exist; creating a log needs a catalog \
                 (--profile … or --users N --items M)",
                path.display()
            )
        })?;
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)
                    .map_err(|e| format!("create {}: {e}", parent.display()))?;
            }
        }
        Ok((
            StreamLog::create(path, header).map_err(|e| e.to_string())?,
            true,
        ))
    }
}
