//! Versioned checkpoint directory.
//!
//! Layout under a root directory:
//!
//! ```text
//! root/
//!   CURRENT          — "v0002\n", flipped atomically (temp + rename)
//!   v0001/
//!     model.ssdt     — published parameters (best snapshot; byte-deterministic)
//!     state.sstc     — full training state for the next warm start
//!     meta           — text metadata (see VersionMeta)
//!   v0002/ …
//!   work/            — in-flight retrain scratch; removed after publish
//!     state.sstc
//!     meta
//! ```
//!
//! Publish ordering: the new `vN/` directory is written completely (each file
//! via atomic temp+rename), then `CURRENT` is flipped, then `work/` is
//! removed. A crash at any point leaves either the old version fully current
//! or the new one — readers following `CURRENT` never observe a partial
//! version. All atomic writes here share the `stream.publish` fault site.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use ssdrec_models::BackboneKind;
use ssdrec_tensor::persist::atomic_write;

/// Fault site guarding every atomic write in the publish path.
pub const PUBLISH_SITE: &str = "stream.publish";

/// Model architecture pinned by a checkpoint directory.
///
/// Warm starts and serve-side reloads rebuild the exact same parameter
/// shapes from these four knobs plus the log's fixed catalog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchSpec {
    /// Backbone encoder.
    pub backbone: BackboneKind,
    /// Embedding width.
    pub dim: usize,
    /// Maximum sequence length.
    pub max_len: usize,
    /// Model init / training seed.
    pub seed: u64,
}

/// Training knobs for one incremental retrain round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrainSpec {
    /// Architecture (must match the base version when warm-starting).
    pub arch: ArchSpec,
    /// Incremental epochs per retrain round.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Checkpoint every N epochs during the round.
    pub checkpoint_every: usize,
}

/// Metadata stored beside each published version (and in `work/` while a
/// round is in flight, where `version` is the round's *target* version).
#[derive(Debug, Clone, PartialEq)]
pub struct VersionMeta {
    /// Version number (1-based).
    pub version: u64,
    /// Log byte offset this version consumed up to.
    pub consumed: u64,
    /// Record count at `consumed` (informational).
    pub records: u64,
    /// Architecture + training knobs used for the round.
    pub spec: RetrainSpec,
}

impl VersionMeta {
    fn to_text(&self) -> String {
        let s = &self.spec;
        format!(
            "ssdrec-stream-meta 1\n\
             version {}\n\
             consumed {}\n\
             records {}\n\
             backbone {}\n\
             dim {}\n\
             max_len {}\n\
             seed {}\n\
             epochs {}\n\
             batch_size {}\n\
             lr_bits {:08x}\n\
             weight_decay_bits {:08x}\n\
             checkpoint_every {}\n",
            self.version,
            self.consumed,
            self.records,
            s.arch.backbone.name(),
            s.arch.dim,
            s.arch.max_len,
            s.arch.seed,
            s.epochs,
            s.batch_size,
            s.lr.to_bits(),
            s.weight_decay.to_bits(),
            s.checkpoint_every,
        )
    }

    fn from_text(text: &str) -> Result<VersionMeta, String> {
        let get = |key: &str| -> Result<String, String> {
            text.lines()
                .filter_map(|l| l.split_once(' '))
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.trim().to_string())
                .ok_or_else(|| format!("meta file is missing key {key:?}"))
        };
        let tag = get("ssdrec-stream-meta")?;
        if tag != "1" {
            return Err(format!("unsupported meta version {tag:?}"));
        }
        let parse_u64 = |key: &str, v: &str| {
            v.parse::<u64>()
                .map_err(|_| format!("meta key {key}: bad integer {v:?}"))
        };
        let backbone_name = get("backbone")?;
        let backbone = BackboneKind::all()
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(&backbone_name))
            .ok_or_else(|| format!("meta key backbone: unknown backbone {backbone_name:?}"))?;
        let u = |key: &str| -> Result<u64, String> { parse_u64(key, &get(key)?) };
        let bits = |key: &str| -> Result<f32, String> {
            let v = get(key)?;
            u32::from_str_radix(&v, 16)
                .map(f32::from_bits)
                .map_err(|_| format!("meta key {key}: bad hex bits {v:?}"))
        };
        Ok(VersionMeta {
            version: u("version")?,
            consumed: u("consumed")?,
            records: u("records")?,
            spec: RetrainSpec {
                arch: ArchSpec {
                    backbone,
                    dim: u("dim")? as usize,
                    max_len: u("max_len")? as usize,
                    seed: u("seed")?,
                },
                epochs: u("epochs")? as usize,
                batch_size: u("batch_size")? as usize,
                lr: bits("lr_bits")?,
                weight_decay: bits("weight_decay_bits")?,
                checkpoint_every: u("checkpoint_every")? as usize,
            },
        })
    }
}

impl fmt::Display for VersionMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "v{:04} ({} records @ offset {}, {} dim {} max_len {})",
            self.version,
            self.records,
            self.consumed,
            self.spec.arch.backbone.name(),
            self.spec.arch.dim,
            self.spec.arch.max_len,
        )
    }
}

/// Handle over a versioned checkpoint directory root.
#[derive(Debug, Clone)]
pub struct CheckpointDir {
    root: PathBuf,
}

impl CheckpointDir {
    /// Wrap `root` (no I/O).
    pub fn new(root: impl Into<PathBuf>) -> CheckpointDir {
        CheckpointDir { root: root.into() }
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Create the root directory if missing.
    pub fn ensure(&self) -> io::Result<()> {
        fs::create_dir_all(&self.root)
    }

    /// Canonical directory name for version `v` (`v0001`, `v0002`, …).
    pub fn version_name(v: u64) -> String {
        format!("v{v:04}")
    }

    /// Directory of version `v`.
    pub fn version_dir(&self, v: u64) -> PathBuf {
        self.root.join(Self::version_name(v))
    }

    /// Published parameter file of version `v`.
    pub fn model_path(&self, v: u64) -> PathBuf {
        self.version_dir(v).join("model.ssdt")
    }

    /// Full training state of version `v`.
    pub fn state_path(&self, v: u64) -> PathBuf {
        self.version_dir(v).join("state.sstc")
    }

    /// Metadata file of version `v`.
    pub fn meta_path(&self, v: u64) -> PathBuf {
        self.version_dir(v).join("meta")
    }

    /// Scratch directory for an in-flight retrain round.
    pub fn work_dir(&self) -> PathBuf {
        self.root.join("work")
    }

    /// Scratch training state (the trainer's periodic checkpoint target).
    pub fn work_state_path(&self) -> PathBuf {
        self.work_dir().join("state.sstc")
    }

    /// Scratch metadata pinning the in-flight round's target.
    pub fn work_meta_path(&self) -> PathBuf {
        self.work_dir().join("meta")
    }

    /// Read the `CURRENT` pointer; `None` if no version has been published.
    pub fn current_version(&self) -> Result<Option<u64>, String> {
        let path = self.root.join("CURRENT");
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("read {}: {e}", path.display())),
        };
        let name = text.trim();
        let v: u64 = name
            .strip_prefix('v')
            .and_then(|d| d.parse().ok())
            .ok_or_else(|| format!("CURRENT contains {name:?}, expected vNNNN"))?;
        Ok(Some(v))
    }

    /// Atomically flip `CURRENT` to version `v` (fault site `stream.publish`).
    pub fn set_current(&self, v: u64) -> io::Result<()> {
        let name = Self::version_name(v);
        atomic_write(&self.root.join("CURRENT"), PUBLISH_SITE, |w| {
            writeln!(w, "{name}")
        })
    }

    /// Read and parse the metadata of version `v`.
    pub fn read_meta(&self, v: u64) -> Result<VersionMeta, String> {
        read_meta_file(&self.meta_path(v))
    }

    /// Read the in-flight round's metadata, if a `work/` round exists.
    pub fn read_work_meta(&self) -> Result<Option<VersionMeta>, String> {
        let path = self.work_meta_path();
        if !path.exists() {
            return Ok(None);
        }
        read_meta_file(&path).map(Some)
    }

    /// Atomically write `meta` to `path` (fault site `stream.publish`).
    pub fn write_meta(path: &Path, meta: &VersionMeta) -> io::Result<()> {
        let text = meta.to_text();
        atomic_write(path, PUBLISH_SITE, |w| w.write_all(text.as_bytes()))
    }
}

fn read_meta_file(path: &Path) -> Result<VersionMeta, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    VersionMeta::from_text(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> VersionMeta {
        VersionMeta {
            version: 3,
            consumed: 1234,
            records: 77,
            spec: RetrainSpec {
                arch: ArchSpec {
                    backbone: BackboneKind::SasRec,
                    dim: 8,
                    max_len: 12,
                    seed: 7,
                },
                epochs: 2,
                batch_size: 32,
                lr: 1e-3,
                weight_decay: 0.0,
                checkpoint_every: 1,
            },
        }
    }

    #[test]
    fn meta_text_roundtrip() {
        let m = meta();
        let back = VersionMeta::from_text(&m.to_text()).unwrap();
        assert_eq!(back, m);
        // Float knobs survive bit-exactly via hex bits.
        assert_eq!(back.spec.lr.to_bits(), m.spec.lr.to_bits());
    }

    #[test]
    fn meta_rejects_unknown_backbone() {
        let text = meta().to_text().replace("SASRec", "AlexNet");
        let err = VersionMeta::from_text(&text).unwrap_err();
        assert!(err.contains("unknown backbone"), "{err}");
    }

    #[test]
    fn current_pointer_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ssdrec-cur-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cd = CheckpointDir::new(&dir);
        cd.ensure().unwrap();
        assert_eq!(cd.current_version().unwrap(), None);
        cd.set_current(5).unwrap();
        assert_eq!(cd.current_version().unwrap(), Some(5));
        fs::remove_dir_all(&dir).unwrap();
    }
}
