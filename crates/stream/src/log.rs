//! Append-only interaction log.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! header (28 bytes):
//!   magic      b"SSLG"
//!   version    u32      — format version, currently 1
//!   num_users  u64      — fixed catalog: user IDs are 0..num_users
//!   num_items  u64      — fixed catalog: item IDs are 1..=num_items
//!   crc        u32      — CRC-32 (IEEE) of the preceding 24 bytes
//! records, back to back:
//!   len        u32      — payload length in bytes (currently always 16)
//!   payload    user u64, item u64
//!   crc        u32      — CRC-32 (IEEE) of the payload
//! ```
//!
//! Offsets are absolute file byte offsets; the first record starts at
//! [`HEADER_LEN`]. The catalog is fixed at creation so that every replay
//! prefix yields the same item/user ID space — the incremental trainer
//! warm-starts from earlier parameters, which is only sound if embedding row
//! `i` keeps meaning item `i` forever.
//!
//! Recovery rules, applied when a log is opened for writing:
//!
//! * a record whose bytes run past end-of-file is a **torn tail** (a crash
//!   mid-append); it is truncated away and reported in [`OpenReport`].
//! * a *complete* record whose CRC does not match cannot have been produced
//!   by a torn sequential append — that is **corruption**, rejected with the
//!   typed [`LogError::Corrupt`] carrying the record's offset.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ssdrec_data::{Interaction, SequenceStore};

// CRC-32 (IEEE 802.3) now lives in `ssdrec_data::format` (shared with the
// columnar dataset file); re-exported here to keep the old API path.
pub use ssdrec_data::crc32;

/// Log format magic bytes.
pub const MAGIC: [u8; 4] = *b"SSLG";
/// Current log format version.
pub const FORMAT_VERSION: u32 = 1;
/// Size of the file header in bytes; also the offset of the first record.
pub const HEADER_LEN: u64 = 28;
/// Size of one record in bytes (`len` + 16-byte payload + `crc`).
pub const RECORD_LEN: u64 = 24;
const PAYLOAD_LEN: u32 = 16;

/// Typed errors for log open/append/replay.
#[derive(Debug)]
pub enum LogError {
    /// Underlying I/O failure (includes injected `stream.*` faults).
    Io(io::Error),
    /// The file does not start with the `SSLG` magic.
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    BadVersion(u32),
    /// The header CRC does not match its contents.
    HeaderCorrupt,
    /// A complete record at `offset` failed its CRC check.
    Corrupt {
        /// Absolute file offset of the corrupt record.
        offset: u64,
    },
    /// An event's IDs fall outside the log's fixed catalog.
    OutOfCatalog {
        /// Offending user ID.
        user: usize,
        /// Offending item ID.
        item: usize,
        /// Catalog user count.
        num_users: usize,
        /// Catalog item count.
        num_items: usize,
    },
    /// A replay offset does not lie within `[HEADER_LEN, end]`.
    BadOffset {
        /// The requested offset.
        offset: u64,
        /// The log's end offset.
        end: u64,
    },
    /// A bulk-load source's catalog does not fit inside the log's fixed
    /// catalog (embedding row `i` must keep meaning item `i` forever, so a
    /// source with more users/items than the log was created for cannot be
    /// ingested).
    CatalogMismatch {
        /// The log's fixed user count.
        log_users: usize,
        /// The log's fixed item count.
        log_items: usize,
        /// The source's user count.
        source_users: usize,
        /// The source's item count.
        source_items: usize,
    },
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "log I/O error: {e}"),
            LogError::BadMagic => write!(f, "not an SSLG interaction log (bad magic)"),
            LogError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported log format version {v} (expected {FORMAT_VERSION})"
                )
            }
            LogError::HeaderCorrupt => write!(f, "log header CRC mismatch"),
            LogError::Corrupt { offset } => {
                write!(f, "corrupt log record at offset {offset} (CRC mismatch)")
            }
            LogError::OutOfCatalog {
                user,
                item,
                num_users,
                num_items,
            } => write!(
                f,
                "event ({user}, {item}) outside the log catalog \
                 ({num_users} users, {num_items} items)"
            ),
            LogError::BadOffset { offset, end } => write!(
                f,
                "offset {offset} is not inside the log (records span {HEADER_LEN}..={end})"
            ),
            LogError::CatalogMismatch {
                log_users,
                log_items,
                source_users,
                source_items,
            } => write!(
                f,
                "source catalog ({source_users} users, {source_items} items) does not fit \
                 the log catalog ({log_users} users, {log_items} items)"
            ),
        }
    }
}

impl std::error::Error for LogError {}

impl From<io::Error> for LogError {
    fn from(e: io::Error) -> Self {
        LogError::Io(e)
    }
}

impl From<ssdrec_faults::Injected> for LogError {
    fn from(e: ssdrec_faults::Injected) -> Self {
        LogError::Io(e.into())
    }
}

/// The fixed catalog recorded in a log's header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogHeader {
    /// User IDs are `0..num_users`.
    pub num_users: usize,
    /// Item IDs are `1..=num_items` (0 is padding, never logged).
    pub num_items: usize,
}

/// What [`StreamLog::open`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenReport {
    /// Number of valid records.
    pub records: u64,
    /// End offset (file length after any torn-tail truncation).
    pub end: u64,
    /// Bytes of torn tail discarded by truncation (0 for a clean log).
    pub truncated_bytes: u64,
}

/// Writer handle over an append-only interaction log.
pub struct StreamLog {
    path: PathBuf,
    file: File,
    header: LogHeader,
    end: u64,
    records: u64,
}

fn header_bytes(h: &LogHeader) -> [u8; HEADER_LEN as usize] {
    let mut buf = [0u8; HEADER_LEN as usize];
    buf[0..4].copy_from_slice(&MAGIC);
    buf[4..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf[8..16].copy_from_slice(&(h.num_users as u64).to_le_bytes());
    buf[16..24].copy_from_slice(&(h.num_items as u64).to_le_bytes());
    let crc = crc32(&buf[0..24]);
    buf[24..28].copy_from_slice(&crc.to_le_bytes());
    buf
}

fn parse_header(buf: &[u8]) -> Result<LogHeader, LogError> {
    if buf.len() < HEADER_LEN as usize {
        return Err(LogError::BadMagic);
    }
    if buf[0..4] != MAGIC {
        return Err(LogError::BadMagic);
    }
    let version = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(LogError::BadVersion(version));
    }
    let stored = u32::from_le_bytes(buf[24..28].try_into().unwrap());
    if stored != crc32(&buf[0..24]) {
        return Err(LogError::HeaderCorrupt);
    }
    Ok(LogHeader {
        num_users: u64::from_le_bytes(buf[8..16].try_into().unwrap()) as usize,
        num_items: u64::from_le_bytes(buf[16..24].try_into().unwrap()) as usize,
    })
}

/// Scan `bytes` (a whole log file) and classify its records.
///
/// Returns `(records, end_offset)`; `end_offset < bytes.len()` means the
/// trailing bytes are a torn tail.
fn scan(bytes: &[u8]) -> Result<(u64, u64), LogError> {
    let mut off = HEADER_LEN as usize;
    let mut records = 0u64;
    while off < bytes.len() {
        let have = bytes.len() - off;
        if have < RECORD_LEN as usize {
            break; // torn tail: record bytes run past EOF
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        if len != PAYLOAD_LEN {
            // A sequential append writes the whole record buffer in order, so
            // a complete length field with an impossible value is corruption,
            // not a crash artifact.
            return Err(LogError::Corrupt { offset: off as u64 });
        }
        let payload = &bytes[off + 4..off + 4 + PAYLOAD_LEN as usize];
        let stored = u32::from_le_bytes(
            bytes[off + 4 + PAYLOAD_LEN as usize..off + RECORD_LEN as usize]
                .try_into()
                .unwrap(),
        );
        if stored != crc32(payload) {
            return Err(LogError::Corrupt { offset: off as u64 });
        }
        off += RECORD_LEN as usize;
        records += 1;
    }
    Ok((records, off as u64))
}

fn decode_record(payload: &[u8]) -> Interaction {
    Interaction {
        user: u64::from_le_bytes(payload[0..8].try_into().unwrap()) as usize,
        item: u64::from_le_bytes(payload[8..16].try_into().unwrap()) as usize,
    }
}

impl StreamLog {
    /// Create a new, empty log at `path` with a fixed catalog.
    ///
    /// Fails if the file already exists.
    pub fn create(path: impl AsRef<Path>, header: LogHeader) -> Result<StreamLog, LogError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        let mut w = BufWriter::new(&file);
        w.write_all(&header_bytes(&header))?;
        w.flush()?;
        drop(w);
        Ok(StreamLog {
            path,
            file,
            header,
            end: HEADER_LEN,
            records: 0,
        })
    }

    /// Open an existing log for appending.
    ///
    /// Validates the header, scans every record, truncates a torn tail, and
    /// rejects mid-log corruption with [`LogError::Corrupt`].
    pub fn open(path: impl AsRef<Path>) -> Result<(StreamLog, OpenReport), LogError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let header = parse_header(&bytes)?;
        let (records, end) = scan(&bytes)?;
        let truncated = bytes.len() as u64 - end;
        if truncated > 0 {
            file.set_len(end)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(end))?;
        let report = OpenReport {
            records,
            end,
            truncated_bytes: truncated,
        };
        Ok((
            StreamLog {
                path,
                file,
                header,
                end,
                records,
            },
            report,
        ))
    }

    /// Path the log was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The fixed catalog.
    pub fn header(&self) -> LogHeader {
        self.header
    }

    /// End offset: the byte offset one past the last valid record.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Number of valid records in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Append one interaction; returns the new end offset.
    ///
    /// Fault site `stream.append` fires before any bytes are written, so an
    /// injected error never leaves a partial record.
    pub fn append(&mut self, user: usize, item: usize) -> Result<u64, LogError> {
        if user >= self.header.num_users || item == 0 || item > self.header.num_items {
            return Err(LogError::OutOfCatalog {
                user,
                item,
                num_users: self.header.num_users,
                num_items: self.header.num_items,
            });
        }
        ssdrec_faults::point("stream.append")?;
        let mut buf = [0u8; RECORD_LEN as usize];
        buf[0..4].copy_from_slice(&PAYLOAD_LEN.to_le_bytes());
        buf[4..12].copy_from_slice(&(user as u64).to_le_bytes());
        buf[12..20].copy_from_slice(&(item as u64).to_le_bytes());
        let crc = crc32(&buf[4..20]);
        buf[20..24].copy_from_slice(&crc.to_le_bytes());
        self.file.write_all(&buf)?;
        self.end += RECORD_LEN;
        self.records += 1;
        Ok(self.end)
    }

    /// Append a batch of `(user, item)` events; returns the new end offset.
    pub fn append_all(
        &mut self,
        events: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<u64, LogError> {
        for (user, item) in events {
            self.append(user, item)?;
        }
        Ok(self.end)
    }

    /// Append every interaction of a [`SequenceStore`] in user-major order.
    ///
    /// The source catalog must *fit inside* the log's fixed catalog
    /// (`source_users <= log_users && source_items <= log_items`), otherwise
    /// the whole load is rejected up front with
    /// [`LogError::CatalogMismatch`] and no bytes are written. Returns the
    /// number of records appended.
    pub fn bulk_load(&mut self, store: &dyn SequenceStore) -> Result<u64, LogError> {
        if store.num_users() > self.header.num_users || store.num_items() > self.header.num_items {
            return Err(LogError::CatalogMismatch {
                log_users: self.header.num_users,
                log_items: self.header.num_items,
                source_users: store.num_users(),
                source_items: store.num_items(),
            });
        }
        let before = self.records;
        let mut seq = Vec::new();
        for u in 0..store.num_users() {
            store.read_seq(u, &mut seq);
            for &item in &seq {
                self.append(u, item)?;
            }
        }
        Ok(self.records - before)
    }

    /// Flush appended records to stable storage (fault site `stream.sync`).
    pub fn sync(&mut self) -> Result<(), LogError> {
        ssdrec_faults::point("stream.sync")?;
        self.file.sync_data()?;
        Ok(())
    }
}

/// Read-only replay of the records in `[from, to)` byte offsets.
///
/// `from = HEADER_LEN` replays from the start; `to` is typically a consumed
/// offset recorded in a versioned checkpoint, or [`StreamLog::end`]. Both
/// bounds must lie on record boundaries. Replay never truncates the file —
/// bytes at or past `to` (including a torn tail) are ignored.
pub fn replay(path: impl AsRef<Path>, from: u64, to: u64) -> Result<Vec<Interaction>, LogError> {
    let mut file = File::open(path.as_ref())?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    parse_header(&bytes)?;
    let end = bytes.len() as u64;
    let bound_ok =
        |off: u64| off >= HEADER_LEN && off <= end && (off - HEADER_LEN) % RECORD_LEN == 0;
    if !bound_ok(from) || !bound_ok(to) || from > to {
        let bad = if bound_ok(from) { to } else { from };
        return Err(LogError::BadOffset { offset: bad, end });
    }
    let mut out = Vec::with_capacity(((to - from) / RECORD_LEN) as usize);
    let mut off = from as usize;
    while (off as u64) < to {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let payload = &bytes[off + 4..off + 4 + PAYLOAD_LEN as usize];
        let stored = u32::from_le_bytes(
            bytes[off + 4 + PAYLOAD_LEN as usize..off + RECORD_LEN as usize]
                .try_into()
                .unwrap(),
        );
        if len != PAYLOAD_LEN || stored != crc32(payload) {
            return Err(LogError::Corrupt { offset: off as u64 });
        }
        out.push(decode_record(payload));
        off += RECORD_LEN as usize;
    }
    Ok(out)
}

/// Read a log's header without opening it for writing.
pub fn read_header(path: impl AsRef<Path>) -> Result<LogHeader, LogError> {
    let mut file = File::open(path.as_ref())?;
    let mut buf = [0u8; HEADER_LEN as usize];
    let mut filled = 0;
    while filled < buf.len() {
        let n = file.read(&mut buf[filled..])?;
        if n == 0 {
            return Err(LogError::BadMagic);
        }
        filled += n;
    }
    parse_header(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_ieee_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn header_roundtrip() {
        let h = LogHeader {
            num_users: 12,
            num_items: 34,
        };
        assert_eq!(parse_header(&header_bytes(&h)).unwrap(), h);
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ssdrec-bulk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        let path = dir.join(format!("{tag}.sslg"));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn toy_dataset(num_users: usize, num_items: usize) -> ssdrec_data::Dataset {
        ssdrec_data::Dataset {
            name: "toy".into(),
            num_users,
            num_items,
            sequences: (0..num_users)
                .map(|u| vec![1 + u % num_items, 1 + (u + 1) % num_items])
                .collect(),
            noise_labels: None,
        }
    }

    #[test]
    fn bulk_load_rejects_oversized_catalog() {
        let mut log = StreamLog::create(
            scratch("mismatch"),
            LogHeader {
                num_users: 2,
                num_items: 5,
            },
        )
        .unwrap();
        let ds = toy_dataset(3, 5);
        match log.bulk_load(&ds) {
            Err(LogError::CatalogMismatch {
                log_users: 2,
                log_items: 5,
                source_users: 3,
                source_items: 5,
            }) => {}
            other => panic!("expected CatalogMismatch, got {other:?}"),
        }
        // Nothing was written: the check happens before any append.
        assert_eq!(log.records(), 0);
        assert_eq!(log.end(), HEADER_LEN);
    }

    #[test]
    fn bulk_load_matches_flattened_append_all() {
        let header = LogHeader {
            num_users: 4,
            num_items: 6,
        };
        let ds = toy_dataset(4, 6);

        let mut bulk = StreamLog::create(scratch("bulk"), header).unwrap();
        let appended = bulk.bulk_load(&ds).unwrap();
        bulk.sync().unwrap();
        assert_eq!(appended, ds.num_actions() as u64);

        let mut manual = StreamLog::create(scratch("manual"), header).unwrap();
        let events: Vec<(usize, usize)> = ds
            .sequences
            .iter()
            .enumerate()
            .flat_map(|(u, seq)| seq.iter().map(move |&i| (u, i)))
            .collect();
        manual.append_all(events).unwrap();
        manual.sync().unwrap();

        let a = std::fs::read(bulk.path()).unwrap();
        let b = std::fs::read(manual.path()).unwrap();
        assert_eq!(a, b, "bulk load must be byte-identical to manual appends");

        let replayed = replay(bulk.path(), HEADER_LEN, bulk.end()).unwrap();
        assert_eq!(replayed.len(), ds.num_actions());
        assert_eq!(replayed[0].user, 0);
        assert_eq!(replayed[0].item, ds.sequences[0][0]);
    }
}
