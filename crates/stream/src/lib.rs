//! # ssdrec-stream
//!
//! The online loop the offline frameworks stop short of: an append-only
//! interaction [`log`] with a fixed catalog and CRC-checked records, a
//! [`version`]ed checkpoint directory with an atomically flipped `CURRENT`
//! pointer, and an incremental [`retrain`] driver that warm-starts from the
//! previous version's full training state and consumes the log delta.
//!
//! Determinism contract: a retrain round is a pure function of the log
//! prefix it pinned, the spec, and the base version — killed and resumed
//! rounds publish byte-identical `model.ssdt` files, at any thread count.
//! `tests/chaos.rs` in the workspace root enforces this end to end.
//!
//! Fault sites: `stream.append`, `stream.sync` (log writer) and
//! `stream.publish` (every atomic write in the publish path).

#![warn(missing_docs)]

pub mod log;
pub mod retrain;
pub mod version;

pub use log::{crc32, replay, LogError, LogHeader, OpenReport, StreamLog, HEADER_LEN, RECORD_LEN};
pub use retrain::{
    load_current, load_newer, load_version, materialize, materialize_model, open_or_create_log,
    retrain, LoadedVersion, RetrainOutcome, TrainedVersion, MAX_TRAIN_PREFIXES, MIN_SEQ_LEN,
};
pub use version::{ArchSpec, CheckpointDir, RetrainSpec, VersionMeta};
