//! # ssdrec-runtime
//!
//! A std-only parallel compute runtime for the SSDRec workspace: a
//! persistent, lazily-spawned thread pool plus the three deterministic
//! parallel primitives every hot path in the workspace is built on.
//!
//! ## Determinism contract
//!
//! Every primitive in this crate produces **bit-identical results at every
//! thread count**, including 1. The rules that make this hold:
//!
//! 1. **Chunking is derived from the problem shape only.** The number of
//!    chunks and their boundaries depend on `len` and `grain`, never on how
//!    many threads happen to exist. Changing `SSDREC_THREADS` changes which
//!    thread executes a chunk, not what the chunk computes.
//! 2. **Chunks write disjoint data** ([`parallel_for`],
//!    [`parallel_chunks_mut`]) or produce partials that are combined in a
//!    **fixed-shape pairwise tree** ([`parallel_reduce`]) whose shape is a
//!    function of the chunk count alone.
//! 3. The sequential path (`threads() == 1`, or a single chunk) runs the
//!    same per-chunk code, so it is the base case of the same contract, not
//!    a separate implementation.
//!
//! Callers that accumulate across chunk boundaries (e.g. a scatter-add)
//! must partition by *destination*, not by *source*, so each output element
//! receives its additions in the same order as the sequential loop — see
//! `ssdrec_tensor::kernels::scatter_rows` for the worked example.
//!
//! ## Why no work-stealing
//!
//! A work-stealing deque would let idle threads poach half-ranges from busy
//! ones, but the split points would then depend on runtime timing — exactly
//! what the determinism contract forbids for reductions — and the kernels
//! here are regular (gemm row blocks, rank rows, score chunks), so static
//! chunking already balances well. A shared injector queue with
//! caller-participation keeps the design ~300 lines, deadlock-free under
//! nesting, and bit-stable; see `DESIGN.md` §8.
//!
//! ## Configuration
//!
//! The pool is spawned lazily on first use with `SSDREC_THREADS` threads
//! (or the machine's available parallelism when unset). [`set_threads`]
//! reconfigures it at runtime — the CLI's `--threads N` flag maps to this.

#![warn(missing_docs)]

pub mod pool;

pub use pool::{parallel_chunks_mut, parallel_for, parallel_reduce, set_threads, threads, Pool};
