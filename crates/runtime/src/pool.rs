//! The persistent chunked thread pool and the three parallel primitives.
//!
//! Execution model: a parallel call splits `0..len` into `ceil(len/grain)`
//! fixed chunks, publishes the call to a shared injector queue, and then
//! **participates itself**, racing the pool workers for chunk indices off a
//! single atomic counter. The caller returns only when every chunk has
//! finished. Because the caller always helps, a call never waits for a free
//! worker: with zero workers (or a busy pool, or a nested call from inside
//! a worker) it simply degrades to sequential execution of the same chunks
//! — same boundaries, same per-chunk code, same bits.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Lock a mutex, recovering from poisoning (a panicked sibling chunk must
/// not wedge the whole pool — the panic is re-raised on the calling thread).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One in-flight parallel call: a lifetime-erased task plus chunk-claiming
/// and completion state. Workers that pop a `Call` whose chunks are already
/// exhausted return immediately without touching the task pointer, so the
/// pointer is only ever dereferenced while the issuing `parallel_for` frame
/// is still blocked in [`Call::wait`].
struct Call {
    /// The chunk body, `f(start, end)`. Raw fat pointer because the closure
    /// borrows the caller's stack; validity is guaranteed by `wait()`.
    task: *const (dyn Fn(usize, usize) + Sync),
    /// Next unclaimed chunk index.
    next: AtomicUsize,
    /// Total chunks (fixed by `len`/`grain`, never by thread count).
    chunks: usize,
    grain: usize,
    len: usize,
    /// Chunks not yet finished; guarded so completion can be awaited.
    remaining: Mutex<usize>,
    done: Condvar,
    /// First panic payload raised by any chunk, re-thrown by the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: `task` is only dereferenced by `run_chunks` while the issuing
// caller is alive inside `parallel_for` (it blocks until `remaining == 0`,
// and no chunk can begin after `next >= chunks`). All other fields are
// Send + Sync by construction.
unsafe impl Send for Call {}
unsafe impl Sync for Call {}

impl Call {
    /// Claim and run chunks until the counter is exhausted. Called by the
    /// issuing thread and by any worker that popped this call.
    fn run_chunks(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.chunks {
                return;
            }
            let start = i * self.grain;
            let end = ((i + 1) * self.grain).min(self.len);
            // SAFETY: i < chunks ⇒ the caller is still blocked in wait().
            let task = unsafe { &*self.task };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(start, end))) {
                let mut slot = lock(&self.panic);
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let mut rem = lock(&self.remaining);
            *rem -= 1;
            if *rem == 0 {
                self.done.notify_all();
            }
        }
    }

    /// Block until every chunk has finished, then re-raise the first panic.
    fn wait(&self) {
        let mut rem = lock(&self.remaining);
        while *rem > 0 {
            rem = match self.done.wait(rem) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        drop(rem);
        if let Some(payload) = lock(&self.panic).take() {
            resume_unwind(payload);
        }
    }
}

struct State {
    queue: VecDeque<Arc<Call>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work: Condvar,
}

fn worker_loop(shared: &Shared) {
    loop {
        let call = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(c) = st.queue.pop_front() {
                    break c;
                }
                st = match shared.work.wait(st) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        call.run_chunks();
    }
}

/// A persistent chunked thread pool. `Pool::new(t)` spawns `t − 1` helper
/// threads — the thread issuing a parallel call is always the `t`-th
/// participant. Dropping the pool signals shutdown and joins every helper.
///
/// Most code uses the process-global pool through the free functions
/// ([`parallel_for`] etc.); explicit instances exist for tests that need a
/// private pool without mutating global state.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl Pool {
    /// A pool where parallel calls run on `threads` total threads (the
    /// caller plus `threads − 1` spawned helpers). `threads` must be ≥ 1.
    pub fn new(threads: usize) -> Pool {
        assert!(threads >= 1, "a pool needs at least one thread");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let handles = (0..threads - 1)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ssdrec-rt-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn runtime worker")
            })
            .collect();
        Pool {
            shared,
            handles,
            threads,
        }
    }

    /// Total threads participating in parallel calls (helpers + caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f(start, end)` over `ceil(len/grain)` fixed chunks of `0..len`,
    /// in parallel. `f` must only write data disjoint between chunks; under
    /// that contract the result is bit-identical at every thread count.
    /// Panics in `f` are forwarded to the caller after all chunks settle.
    pub fn parallel_for(&self, len: usize, grain: usize, f: impl Fn(usize, usize) + Sync) {
        if len == 0 {
            return;
        }
        let grain = grain.max(1);
        let chunks = len.div_ceil(grain);
        if chunks == 1 || self.threads == 1 {
            // Sequential base case of the same contract: identical chunk
            // boundaries, one chunk after another on the calling thread.
            let mut start = 0;
            while start < len {
                let end = (start + grain).min(len);
                f(start, end);
                start = end;
            }
            return;
        }
        // SAFETY (lifetime erasure): the Call is fully settled — every
        // claimed chunk finished, no chunk claimable — before wait()
        // returns below, so `f` outlives every dereference of `task`.
        let task: *const (dyn Fn(usize, usize) + Sync) = unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize, usize) + Sync),
                *const (dyn Fn(usize, usize) + Sync),
            >(&f)
        };
        let call = Arc::new(Call {
            task,
            next: AtomicUsize::new(0),
            chunks,
            grain,
            len,
            remaining: Mutex::new(chunks),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        let helpers = (self.threads - 1).min(chunks - 1);
        {
            let mut st = lock(&self.shared.state);
            for _ in 0..helpers {
                st.queue.push_back(Arc::clone(&call));
            }
        }
        if helpers == 1 {
            self.shared.work.notify_one();
        } else {
            self.shared.work.notify_all();
        }
        call.run_chunks();
        call.wait();
    }

    /// Split `data` into fixed chunks of `chunk_len` elements and run
    /// `f(chunk_index, chunk)` over them in parallel. The safe disjoint
    /// `&mut` facade over [`Pool::parallel_for`].
    pub fn parallel_chunks_mut<T: Send>(
        &self,
        data: &mut [T],
        chunk_len: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        let n = data.len();
        if n == 0 {
            return;
        }
        let chunk_len = chunk_len.max(1);
        let nchunks = n.div_ceil(chunk_len);
        let base = SendPtr(data.as_mut_ptr());
        self.parallel_for(nchunks, 1, move |cs, ce| {
            for ci in cs..ce {
                let start = ci * chunk_len;
                let end = ((ci + 1) * chunk_len).min(n);
                // SAFETY: chunk ranges [start, end) are pairwise disjoint
                // sub-slices of `data`, which outlives the call (the caller
                // blocks until completion).
                let chunk =
                    unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
                f(ci, chunk);
            }
        });
    }

    /// Map fixed chunks of `0..len` through `map(start, end)` in parallel,
    /// then combine the per-chunk partials with a **fixed-shape pairwise
    /// tree** of `fold` calls: `[p0 p1 p2 p3 p4] → [f(p0,p1) f(p2,p3) p4] →
    /// …`. The tree shape depends only on the chunk count, so the result —
    /// including any floating-point rounding — is independent of the thread
    /// count. Returns `None` for `len == 0`.
    pub fn parallel_reduce<T: Send>(
        &self,
        len: usize,
        grain: usize,
        map: impl Fn(usize, usize) -> T + Sync,
        fold: impl Fn(T, T) -> T,
    ) -> Option<T> {
        if len == 0 {
            return None;
        }
        let grain = grain.max(1);
        let chunks = len.div_ceil(grain);
        let mut partials: Vec<Option<T>> = (0..chunks).map(|_| None).collect();
        {
            let slots = SendPtr(partials.as_mut_ptr());
            self.parallel_for(len, grain, move |start, end| {
                let ci = start / grain;
                let v = map(start, end);
                // SAFETY: each chunk index is claimed exactly once, so each
                // slot is written by exactly one thread; the completion
                // handshake in parallel_for orders the writes before the
                // reads below.
                unsafe { *slots.get().add(ci) = Some(v) };
            });
        }
        let mut layer: Vec<T> = partials
            .into_iter()
            .map(|p| p.expect("every chunk ran"))
            .collect();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            let mut it = layer.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(fold(a, b)),
                    None => next.push(a),
                }
            }
            layer = next;
        }
        layer.pop()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        lock(&self.shared.state).shutdown = true;
        self.shared.work.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A raw pointer that may cross threads. Used only for provably disjoint
/// writes inside a single parallel call.
struct SendPtr<T>(*mut T);
impl<T> SendPtr<T> {
    /// Accessor (rather than direct field use) so edition-2021 closures
    /// capture the `Sync` wrapper, not the bare raw pointer.
    fn get(&self) -> *mut T {
        self.0
    }
}
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// ---------------------------------------------------------------------------
// The process-global pool.
// ---------------------------------------------------------------------------

static GLOBAL: Mutex<Option<Pool>> = Mutex::new(None);
/// Cached thread count for the hot-path gate (0 = pool not yet created).
static THREADS: AtomicUsize = AtomicUsize::new(0);

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("SSDREC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("SSDREC_THREADS={v:?} is not a positive integer; using auto detection");
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The thread count parallel calls will use, spawning the global pool on
/// first call (`SSDREC_THREADS`, else the machine's available parallelism).
pub fn threads() -> usize {
    let t = THREADS.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let mut g = lock(&GLOBAL);
    if g.is_none() {
        let n = default_threads();
        *g = Some(Pool::new(n));
        THREADS.store(n, Ordering::Relaxed);
    }
    g.as_ref().expect("just initialised").threads()
}

/// Reconfigure the global pool to `threads` total threads (≥ 1), joining
/// the old workers first. Used by `--threads N` and the bench sweep; safe
/// to call at any time between parallel regions.
pub fn set_threads(threads: usize) {
    assert!(threads >= 1, "set_threads needs at least one thread");
    let mut g = lock(&GLOBAL);
    // Drop (and join) any previous pool before spawning the new one.
    *g = None;
    *g = Some(Pool::new(threads));
    THREADS.store(threads, Ordering::Relaxed);
}

fn with_global<R>(f: impl FnOnce(&Pool) -> R) -> R {
    threads(); // ensure initialised
    let g = lock(&GLOBAL);
    f(g.as_ref().expect("initialised by threads()"))
}

/// [`Pool::parallel_for`] on the global pool.
pub fn parallel_for(len: usize, grain: usize, f: impl Fn(usize, usize) + Sync) {
    with_global(|p| p.parallel_for(len, grain, f))
}

/// [`Pool::parallel_chunks_mut`] on the global pool.
pub fn parallel_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    with_global(|p| p.parallel_chunks_mut(data, chunk_len, f))
}

/// [`Pool::parallel_reduce`] on the global pool.
pub fn parallel_reduce<T: Send>(
    len: usize,
    grain: usize,
    map: impl Fn(usize, usize) -> T + Sync,
    fold: impl Fn(T, T) -> T,
) -> Option<T> {
    with_global(|p| p.parallel_reduce(len, grain, map, fold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_index_exactly_once() {
        let pool = Pool::new(4);
        for (len, grain) in [(1usize, 1usize), (7, 2), (100, 7), (64, 64), (65, 64)] {
            let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
            pool.parallel_for(len, grain, |s, e| {
                for i in s..e {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "len={len} grain={grain}"
            );
        }
    }

    #[test]
    fn chunk_boundaries_are_thread_independent() {
        // Record the (start, end) set at several thread counts; must match.
        let bounds = |threads: usize| -> Vec<(usize, usize)> {
            let pool = Pool::new(threads);
            let out: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::new());
            pool.parallel_for(103, 10, |s, e| lock(&out).push((s, e)));
            let mut v = lock(&out).clone();
            v.sort_unstable();
            v
        };
        let one = bounds(1);
        assert_eq!(one, bounds(2));
        assert_eq!(one, bounds(7));
        assert_eq!(one.len(), 11);
        assert_eq!(one[0], (0, 10));
        assert_eq!(*one.last().unwrap(), (100, 103));
    }

    #[test]
    fn chunks_mut_partitions_disjointly() {
        let pool = Pool::new(3);
        let mut data = vec![0u32; 50];
        pool.parallel_chunks_mut(&mut data, 7, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v += 1 + ci as u32 * 100;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, 1 + (i / 7) as u32 * 100, "index {i}");
        }
    }

    #[test]
    fn reduce_matches_sequential_fold_exactly() {
        let pool = Pool::new(4);
        let xs: Vec<u64> = (0..1000).map(|i| i * 37 % 101).collect();
        let par = pool
            .parallel_reduce(
                xs.len(),
                64,
                |s, e| xs[s..e].iter().copied().sum::<u64>(),
                |a, b| a + b,
            )
            .unwrap();
        assert_eq!(par, xs.iter().sum::<u64>());
        assert_eq!(pool.parallel_reduce(0, 8, |_, _| 1u64, |a, b| a + b), None);
    }

    #[test]
    fn reduce_tree_shape_is_thread_independent() {
        // A non-commutative fold (string concat) exposes any ordering
        // difference between thread counts.
        let concat = |threads: usize| {
            let pool = Pool::new(threads);
            pool.parallel_reduce(
                26,
                3,
                |s, e| (s..e).map(|i| (b'a' + i as u8) as char).collect::<String>(),
                |a, b| format!("({a}{b})"),
            )
            .unwrap()
        };
        let one = concat(1);
        assert_eq!(one, concat(2));
        assert_eq!(one, concat(5));
        assert!(one.contains("(abc"), "leftmost chunk first: {one}");
    }

    #[test]
    fn nested_parallel_for_completes() {
        let pool = Pool::new(3);
        let total = AtomicU64::new(0);
        pool.parallel_for(8, 1, |s, e| {
            for _ in s..e {
                // Nested call on the same (global-free) pool instance would
                // need &pool captured; nesting through the global pool is
                // exercised in the integration tests. Here: plain work.
                total.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn panics_propagate_to_caller() {
        let pool = Pool::new(4);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(10, 1, |s, _| {
                if s == 5 {
                    panic!("chunk 5 exploded");
                }
            });
        }));
        let payload = r.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "chunk 5 exploded");
        // The pool must still be usable afterwards.
        let n = AtomicUsize::new(0);
        pool.parallel_for(4, 1, |s, e| {
            n.fetch_add(e - s, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = Pool::new(5);
        let n = AtomicUsize::new(0);
        pool.parallel_for(100, 1, |s, e| {
            n.fetch_add(e - s, Ordering::Relaxed);
        });
        drop(pool); // must not hang
        assert_eq!(n.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        let tid = std::thread::current().id();
        pool.parallel_for(10, 2, |_, _| {
            assert_eq!(std::thread::current().id(), tid);
        });
    }
}
