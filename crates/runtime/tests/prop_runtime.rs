//! Property tests for the runtime's deterministic primitives, on the
//! in-workspace `ssdrec-testkit` framework.
//!
//! The central claim under test is the determinism contract from the crate
//! docs: `parallel_reduce` computes the same *fixed-shape pairwise tree*
//! over per-chunk partials regardless of thread count, so for an exactly
//! associative fold it equals the sequential fold bit-for-bit, and for a
//! non-associative float fold it still equals the tree evaluated
//! sequentially over the same chunk boundaries.

use ssdrec_runtime::Pool;
use ssdrec_testkit::{gens, property};

/// Sequential reference for the fixed-shape reduce: map each `grain`-sized
/// chunk, then fold the partials pairwise level by level — the exact tree
/// `parallel_reduce` promises, evaluated on one thread.
fn tree_reference<T>(
    len: usize,
    grain: usize,
    map: impl Fn(usize, usize) -> T,
    fold: impl Fn(T, T) -> T,
) -> Option<T> {
    let mut level: Vec<T> = Vec::new();
    let mut start = 0;
    while start < len {
        let end = (start + grain).min(len);
        level.push(map(start, end));
        start = end;
    }
    if level.is_empty() {
        return None;
    }
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(fold(a, b)),
                None => next.push(a),
            }
        }
        level = next;
    }
    level.into_iter().next()
}

property! {
    cases = 48;

    /// For an associative integer fold, `parallel_reduce` equals the plain
    /// sequential fold at every thread count.
    fn reduce_matches_sequential_fold_ints(
        xs in gens::vecs(gens::usizes(0, 1000), 0, 200),
        grain_pick in gens::usizes(1, 17),
        threads in gens::usizes(1, 7),
    ) {
        let pool = Pool::new(threads);
        let got = pool.parallel_reduce(
            xs.len(),
            grain_pick,
            |s, e| xs[s..e].iter().sum::<usize>(),
            |a, b| a + b,
        );
        let want = if xs.is_empty() { None } else { Some(xs.iter().sum::<usize>()) };
        assert_eq!(got, want);
    }

    /// For a *non-associative* f32 sum, `parallel_reduce` still equals the
    /// fixed-shape tree reference bit-for-bit, at 1 thread and at an
    /// arbitrary thread count — i.e. the result depends on (len, grain)
    /// only, never on parallelism.
    fn reduce_is_bitstable_for_float_sums(
        xs in gens::vecs(gens::f32s(-100.0, 100.0), 0, 300),
        grain_pick in gens::usizes(1, 23),
        threads in gens::usizes(2, 8),
    ) {
        let map = |s: usize, e: usize| xs[s..e].iter().sum::<f32>();
        let fold = |a: f32, b: f32| a + b;

        let want = tree_reference(xs.len(), grain_pick, map, fold);
        let seq = Pool::new(1).parallel_reduce(xs.len(), grain_pick, map, fold);
        let par = Pool::new(threads).parallel_reduce(xs.len(), grain_pick, map, fold);

        assert_eq!(seq.map(f32::to_bits), want.map(f32::to_bits));
        assert_eq!(par.map(f32::to_bits), want.map(f32::to_bits));
    }

    /// `parallel_for` chunking covers [0, len) exactly once with
    /// boundaries derived from (len, grain) alone.
    fn parallel_for_covers_range_once(
        len in gens::usizes(0, 500),
        grain_pick in gens::usizes(1, 31),
        threads in gens::usizes(1, 6),
    ) {
        use std::sync::atomic::{AtomicU32, Ordering};
        let hits: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
        let pool = Pool::new(threads);
        pool.parallel_for(len, grain_pick, |s, e| {
            assert!(s < e && e <= len);
            assert!(e - s <= grain_pick);
            for h in &hits[s..e] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
