//! The [`SeqEncoder`] abstraction: any sequential recommender that maps an
//! item-representation sequence `B×T×d` to a sequence representation `B×d`
//! (the paper's `f_seq`, Eq. 15).
//!
//! Because encoders consume *representations* rather than raw IDs, SSDRec
//! can hand them denoised embedding sequences — this is exactly the plug-in
//! point the paper describes.

use ssdrec_tensor::{Binding, Graph, Var};

/// A sequential encoder `f_seq : B×T×d → B×d`.
///
/// `Send + Sync` is required so frozen models can be shared across the
/// serving subsystem's worker threads; encoders hold only parameter
/// handles and static configuration, never mutable state.
pub trait SeqEncoder: Send + Sync {
    /// Encode a batch of item-representation sequences into one
    /// representation per sequence.
    fn encode(&self, g: &mut Graph, bind: &Binding, h_seq: Var) -> Var;

    /// Per-position states `B×T×d` where position `t`'s state may only
    /// depend on inputs `≤ t` — the prerequisite for autoregressive
    /// training. `None` (the default) means the encoder is not causal
    /// position-wise and only supports last-position training.
    fn encode_causal_all(&self, _g: &mut Graph, _bind: &Binding, _h_seq: Var) -> Option<Var> {
        None
    }

    /// The model's display name (as used in the paper's tables).
    fn name(&self) -> &'static str;
}

/// Which backbone to build (the six baselines of Table III).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BackboneKind {
    /// GRU4Rec [12]: GRU over the sequence, last hidden state.
    Gru4Rec,
    /// NARM [14]: GRU + attention hybrid encoder.
    Narm,
    /// STAMP [40]: short-term attention/memory priority.
    Stamp,
    /// Caser [15]: horizontal + vertical convolutions.
    Caser,
    /// SASRec [16]: causal multi-head self-attention.
    SasRec,
    /// BERT4Rec [17]: bidirectional transformer.
    Bert4Rec,
}

impl BackboneKind {
    /// All six backbones in the paper's column order.
    pub fn all() -> [BackboneKind; 6] {
        [
            BackboneKind::Gru4Rec,
            BackboneKind::Narm,
            BackboneKind::Stamp,
            BackboneKind::Caser,
            BackboneKind::SasRec,
            BackboneKind::Bert4Rec,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BackboneKind::Gru4Rec => "GRU4Rec",
            BackboneKind::Narm => "NARM",
            BackboneKind::Stamp => "STAMP",
            BackboneKind::Caser => "Caser",
            BackboneKind::SasRec => "SASRec",
            BackboneKind::Bert4Rec => "BERT4Rec",
        }
    }
}
