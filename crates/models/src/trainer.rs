//! Shared training loop: Adam, full-catalogue cross-entropy, early stopping
//! on validation HR@20 with patience (paper §IV-A3), and timed evaluation.

use std::time::Instant;

use ssdrec_data::{BatchSource, Example, Split};
use ssdrec_metrics::{rank_rows, RankingAccumulator};
use ssdrec_tensor::{Adam, Gradients, Graph, Rng};

use crate::checkpoint::{self, CheckpointConfig, TrainState};
use crate::model::RecModel;

/// Learning-rate schedule applied on top of the base rate.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum LrSchedule {
    /// Constant learning rate (the paper's setting).
    #[default]
    Constant,
    /// Linear warm-up from 0 to the base rate over the first `warmup_steps`
    /// optimisation steps, then constant. Stabilises the first updates of
    /// the deeper SSDRec stack.
    WarmupLinear {
        /// Steps to reach the base rate.
        warmup_steps: u64,
    },
}

impl LrSchedule {
    /// The multiplier to apply to the base learning rate at `step` (1-based).
    pub fn factor(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::WarmupLinear { warmup_steps } => {
                if warmup_steps == 0 {
                    1.0
                } else {
                    (step as f32 / warmup_steps as f32).min(1.0)
                }
            }
        }
    }
}

/// Training hyper-parameters (defaults follow the paper where feasible).
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Maximum number of epochs.
    pub epochs: usize,
    /// Mini-batch size (paper: 256; scaled-down default here).
    pub batch_size: usize,
    /// Adam learning rate (paper: 1e-3).
    pub lr: f32,
    /// L2 regularisation coefficient (paper searches {0, 1e-3, 1e-4}).
    pub weight_decay: f32,
    /// Early-stopping patience in epochs on validation HR@20 (paper: 10).
    pub patience: usize,
    /// RNG seed for shuffling/dropout.
    pub seed: u64,
    /// Print a one-line log per epoch.
    pub verbose: bool,
    /// Learning-rate schedule.
    pub lr_schedule: LrSchedule,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 64,
            lr: 1e-3,
            weight_decay: 0.0,
            patience: 10,
            seed: 7,
            verbose: false,
            lr_schedule: LrSchedule::default(),
        }
    }
}

/// What the trainer measured.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Epochs actually run (≤ `epochs` under early stopping).
    pub epochs_run: usize,
    /// Best validation metrics (the restored checkpoint).
    pub valid: ssdrec_metrics::MetricReport,
    /// Test metrics of the restored best checkpoint.
    pub test: ssdrec_metrics::MetricReport,
    /// Per-example test ranks (for significance testing).
    pub test_ranks: Vec<usize>,
    /// Mean wall-clock seconds per training epoch (Table VI "Training").
    pub train_secs_per_epoch: f64,
    /// Wall-clock seconds for one full test inference pass (Table VI).
    pub infer_secs: f64,
    /// Final training loss.
    pub final_loss: f32,
}

/// Evaluate a model on a set of examples, returning the rank accumulator.
///
/// Convenience wrapper over [`evaluate_with`] that owns a throwaway graph;
/// step loops that already hold a long-lived graph should pass it to
/// [`evaluate_with`] so the tape storage is reused.
pub fn evaluate<M: RecModel>(
    model: &M,
    examples: &[Example],
    batch_size: usize,
) -> RankingAccumulator {
    let mut g = Graph::new();
    evaluate_with(model, examples, batch_size, &mut g)
}

/// Evaluate a model on a set of examples using a caller-provided graph.
///
/// The graph is [`reset`](Graph::reset) before every batch, so tape
/// storage is recycled through the buffer pool instead of reallocated;
/// results are bit-identical to building a fresh graph per batch.
pub fn evaluate_with<M: RecModel>(
    model: &M,
    examples: &[Example],
    batch_size: usize,
    g: &mut Graph,
) -> RankingAccumulator {
    evaluate_source_with(model, &examples, batch_size, g)
}

/// Evaluate a model over any [`BatchSource`] — owned examples or an
/// out-of-core store + split plan. Batches (and hence the accumulator) are
/// bit-identical across sources for the same examples.
pub fn evaluate_source_with<M: RecModel>(
    model: &M,
    source: &dyn BatchSource,
    batch_size: usize,
    g: &mut Graph,
) -> RankingAccumulator {
    let mut acc = RankingAccumulator::new();
    source.for_each_batch(batch_size, 0, &mut |batch| {
        g.reset();
        let bind = model.store().bind_all(g);
        let scores = model.eval_scores(g, &bind, batch);
        let sv = g.value(scores);
        let v = sv.shape()[1];
        // Rank the whole batch on the runtime pool; row order (and hence
        // the accumulator contents) matches the per-row sequential loop.
        for rank in rank_rows(sv.data(), v, &batch.targets) {
            acc.push_rank(rank);
        }
    });
    acc
}

/// Train a model with Adam + early stopping; restores the best checkpoint
/// before the final test evaluation.
///
/// Infallible convenience wrapper over [`train_with_checkpoints`] without
/// periodic checkpointing (no I/O can fail).
pub fn train<M: RecModel>(model: &mut M, split: &Split, cfg: &TrainConfig) -> TrainReport {
    train_with_checkpoints(model, split, cfg, None)
        .expect("training without a checkpoint config performs no fallible I/O")
}

/// [`train`], with optional periodic checkpointing and resume.
///
/// With a [`CheckpointConfig`], the full trainer state (parameters, Adam
/// moments and step count, RNG stream, epoch/patience counters, best
/// snapshot) is written atomically to `ckpt.path` every `ckpt.every` epochs
/// and when training stops. With `ckpt.resume` and an existing state file,
/// training restarts from the recorded epoch and the remainder of the run
/// is **bit-identical** to one that was never interrupted (enforced by
/// `tests/chaos.rs` and `tests/thread_determinism.rs`).
///
/// Fault sites: `ckpt.save` (inside the atomic write) and `train.epoch`
/// (after each periodic save — arming a `panic` there simulates a kill).
pub fn train_with_checkpoints<M: RecModel>(
    model: &mut M,
    split: &Split,
    cfg: &TrainConfig,
    ckpt: Option<&CheckpointConfig>,
) -> Result<TrainReport, String> {
    train_with_warm_start(model, split, cfg, None, ckpt)
}

/// [`train_with_checkpoints`], optionally warm-started from a prior run's
/// [`TrainState`] — the continual-training entry point used by
/// `ssdrec-stream`'s incremental retrain driver.
///
/// A warm start restores the *optimizer trajectory* (parameter values, Adam
/// moments and step count, raw RNG stream, model-side state) of the prior
/// run but starts fresh epoch/early-stopping counters: the loop runs
/// `cfg.epochs` incremental epochs over `split` from epoch 0. This differs
/// from `resume`, which continues the *same* run's epoch schedule.
///
/// Precedence: when `ckpt.resume` finds an existing state file, that state
/// wins and `warm` is ignored — a killed warm-started run resumes from its
/// own work checkpoint (which already embeds the warm start), keeping
/// kill-and-resume bit-identical to an uninterrupted warm-started run.
pub fn train_with_warm_start<M: RecModel>(
    model: &mut M,
    split: &Split,
    cfg: &TrainConfig,
    warm: Option<&TrainState>,
    ckpt: Option<&CheckpointConfig>,
) -> Result<TrainReport, String> {
    let (tr, va, te): (&[Example], &[Example], &[Example]) =
        (&split.train, &split.valid, &split.test);
    let sources = SourceSplit {
        train: &tr,
        valid: &va,
        test: &te,
    };
    train_from_source(model, &sources, cfg, warm, ckpt)
}

/// A train/valid/test triple of [`BatchSource`]s — the source-agnostic
/// analogue of [`Split`]. Build one from references to `&[Example]` slices
/// (in-RAM) or
/// from [`StoreExamples`](ssdrec_data::StoreExamples) views over a columnar
/// store + [`SplitPlan`](ssdrec_data::SplitPlan) (out-of-core).
pub struct SourceSplit<'a> {
    /// Training examples.
    pub train: &'a dyn BatchSource,
    /// Validation examples (early stopping).
    pub valid: &'a dyn BatchSource,
    /// Test examples.
    pub test: &'a dyn BatchSource,
}

/// [`train_with_warm_start`] over arbitrary [`BatchSource`]s — the entry
/// point for training straight off a columnar `.ssdc` file with bounded RAM.
/// For the same underlying examples this is **bit-identical** to the
/// `Split`-based path: same batch plans, same RNG stream, same checkpoint
/// bytes (`crates/data/tests/prop_columnar.rs` and the golden-determinism
/// suite pin this).
pub fn train_from_source<M: RecModel>(
    model: &mut M,
    split: &SourceSplit<'_>,
    cfg: &TrainConfig,
    warm: Option<&TrainState>,
    ckpt: Option<&CheckpointConfig>,
) -> Result<TrainReport, String> {
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    let mut rng = Rng::seed(cfg.seed);

    let mut best_hr20 = f64::NEG_INFINITY;
    let mut best_snapshot = model.store().snapshot();
    let mut best_valid = ssdrec_metrics::MetricReport::default();
    let mut since_best = 0usize;
    let mut epochs_run = 0usize;
    let mut total_train_secs = 0.0f64;
    let mut final_loss = f32::NAN;
    let mut start_epoch = 0usize;

    let resuming = ckpt.is_some_and(|c| c.resume && c.path.exists());
    if let (Some(w), false) = (warm, resuming) {
        w.apply_to(model).map_err(|e| format!("warm start: {e}"))?;
        opt.set_steps(w.adam_steps);
        rng = Rng::from_state(w.rng_state);
        // The early-stopping baseline is the warm-started parameters, not
        // the random init captured above.
        best_snapshot = model.store().snapshot();
    }

    if let Some(c) = ckpt {
        if c.resume && c.path.exists() {
            let st = checkpoint::load_train_state(&c.path)
                .map_err(|e| format!("resume from {}: {e}", c.path.display()))?;
            st.apply_to(model)
                .map_err(|e| format!("resume from {}: {e}", c.path.display()))?;
            opt.set_steps(st.adam_steps);
            rng = Rng::from_state(st.rng_state);
            best_hr20 = st.best_hr20;
            best_valid = st.best_valid;
            best_snapshot = st.best_snapshot.clone();
            since_best = st.since_best as usize;
            total_train_secs = st.total_train_secs;
            final_loss = st.final_loss;
            start_epoch = st.next_epoch as usize;
            epochs_run = start_epoch;
            if cfg.verbose {
                eprintln!(
                    "[{}] resumed from {} at epoch {start_epoch}",
                    model.model_name(),
                    c.path.display()
                );
            }
        }
    }

    // One graph and one gradient workspace for the whole run: each step
    // resets the tape (recycling its buffers through the pool) instead of
    // allocating a new one, and backward writes into the same workspace.
    let mut g = Graph::with_capacity(Graph::DEFAULT_CAPACITY);
    let mut ws = Gradients::new();

    for epoch in start_epoch..cfg.epochs {
        epochs_run = epoch + 1;
        model.on_epoch_start(epoch, cfg.epochs);
        let t0 = Instant::now();
        let mut epoch_loss = 0.0f32;
        let mut nb = 0usize;
        split.train.for_each_batch(
            cfg.batch_size,
            cfg.seed.wrapping_add(epoch as u64),
            &mut |batch| {
                g.reset();
                let bind = model.store().bind_all(&mut g);
                let loss = model.loss(&mut g, &bind, batch, &mut rng);
                let lv = g.value(loss).item();
                if lv.is_finite() {
                    epoch_loss += lv;
                    nb += 1;
                    g.backward_into(loss, &mut ws);
                    opt.lr = cfg.lr * cfg.lr_schedule.factor(opt.steps() + 1);
                    opt.step(model.store_mut(), &bind, &mut ws);
                }
                model.after_step();
            },
        );
        total_train_secs += t0.elapsed().as_secs_f64();
        final_loss = if nb > 0 {
            epoch_loss / nb as f32
        } else {
            f32::NAN
        };

        let vacc = evaluate_source_with(model, split.valid, cfg.batch_size, &mut g);
        let hr20 = vacc.hr(20);
        if cfg.verbose {
            eprintln!(
                "[{}] epoch {epoch}: loss {final_loss:.4}, valid HR@20 {hr20:.4}",
                model.model_name()
            );
        }
        if hr20 > best_hr20 {
            best_hr20 = hr20;
            best_snapshot = model.store().snapshot();
            best_valid = vacc.report();
            since_best = 0;
        } else {
            since_best += 1;
        }
        let stopping = since_best > 0 && since_best >= cfg.patience;

        if let Some(c) = ckpt {
            let every = c.every.max(1);
            let done = epoch + 1;
            if done % every == 0 || stopping || done == cfg.epochs {
                let st = checkpoint::TrainState {
                    next_epoch: done as u32,
                    since_best: since_best as u32,
                    adam_steps: opt.steps(),
                    rng_state: rng.state(),
                    best_hr20,
                    total_train_secs,
                    final_loss,
                    best_valid: best_valid.clone(),
                    model_state: model.train_state(),
                    params: checkpoint::TrainState::capture_params(model),
                    best_snapshot: best_snapshot.clone(),
                };
                checkpoint::save_train_state(&st, &c.path)
                    .map_err(|e| format!("checkpoint to {}: {e}", c.path.display()))?;
                // Kill-simulation hook: arming `train.epoch:panic:N` aborts
                // the run right after the Nth save, exactly like a crash
                // between epochs; an `error` kind surfaces as Err instead.
                ssdrec_faults::point("train.epoch").map_err(|e| e.to_string())?;
            }
        }

        if stopping {
            break;
        }
    }

    model.store_mut().restore(&best_snapshot);

    let t0 = Instant::now();
    let tacc = evaluate_source_with(model, split.test, cfg.batch_size, &mut g);
    let infer_secs = t0.elapsed().as_secs_f64();

    Ok(TrainReport {
        epochs_run,
        valid: best_valid,
        test: tacc.report(),
        test_ranks: tacc.ranks().to_vec(),
        train_secs_per_epoch: if epochs_run > 0 {
            total_train_secs / epochs_run as f64
        } else {
            0.0
        },
        infer_secs,
        final_loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::BackboneKind;
    use crate::model::SeqRec;
    use ssdrec_data::{prepare, SyntheticConfig};

    fn small_split() -> (usize, Split) {
        // Large enough that "beats random" has real margin: at tiny scales
        // random HR@20 approaches 1 and the assertion measures only noise.
        let ds = SyntheticConfig::beauty()
            .scaled(0.3)
            .with_seed(3)
            .generate();
        let (filtered, split) = prepare(&ds, 50, 2);
        (filtered.num_items, split)
    }

    #[test]
    fn training_reduces_loss_and_beats_random() {
        let (num_items, split) = small_split();
        let mut model = SeqRec::new(BackboneKind::Gru4Rec, num_items, 16, 50, 0);
        let cfg = TrainConfig {
            epochs: 10,
            batch_size: 32,
            patience: 10,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &split, &cfg);
        assert!(report.final_loss.is_finite());
        // Random ranking would give HR@20 ≈ 20 / num_items.
        let random_hr = 20.0 / num_items as f64;
        assert!(
            report.test.hr20 > random_hr,
            "HR@20 {} not above random {}",
            report.test.hr20,
            random_hr
        );
    }

    #[test]
    fn early_stopping_restores_best() {
        let (num_items, split) = small_split();
        let mut model = SeqRec::new(BackboneKind::Stamp, num_items, 8, 50, 1);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 32,
            patience: 1,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &split, &cfg);
        // Restored model must reproduce the reported valid metrics.
        let vacc = evaluate(&model, &split.valid, 32);
        assert!((vacc.hr(20) - report.valid.hr20).abs() < 1e-9);
    }

    #[test]
    fn report_times_are_positive() {
        let (num_items, split) = small_split();
        let mut model = SeqRec::new(BackboneKind::Gru4Rec, num_items, 8, 50, 2);
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 32,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &split, &cfg);
        assert!(report.train_secs_per_epoch > 0.0);
        assert!(report.infer_secs > 0.0);
        assert_eq!(report.epochs_run, 1);
    }
}

#[cfg(test)]
mod objective_tests {
    use super::*;
    use crate::encoder::BackboneKind;
    use crate::model::{Objective, SeqRec};
    use ssdrec_data::{prepare, SyntheticConfig};

    #[test]
    fn all_positions_objective_trains_causal_backbones() {
        let ds = SyntheticConfig::beauty()
            .scaled(0.3)
            .with_seed(3)
            .generate();
        let (filtered, split) = prepare(&ds, 50, 2);
        for kind in [BackboneKind::SasRec, BackboneKind::Gru4Rec] {
            let mut model = SeqRec::new(kind, filtered.num_items, 8, 50, 0);
            model.objective = Objective::AllPositions;
            let cfg = TrainConfig {
                epochs: 5,
                batch_size: 32,
                patience: 10,
                ..TrainConfig::default()
            };
            let report = train(&mut model, &split, &cfg);
            assert!(report.final_loss.is_finite(), "{kind:?} diverged");
            let random = 20.0 / filtered.num_items as f64;
            assert!(report.test.hr20 > random, "{kind:?} below random");
        }
    }

    #[test]
    fn all_positions_falls_back_for_non_causal() {
        // STAMP has no causal per-position states; the objective must fall
        // back to last-position rather than fail.
        let ds = SyntheticConfig::beauty()
            .scaled(0.12)
            .with_seed(4)
            .generate();
        let (filtered, split) = prepare(&ds, 50, 2);
        let mut model = SeqRec::new(BackboneKind::Stamp, filtered.num_items, 8, 50, 1);
        model.objective = Objective::AllPositions;
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 32,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &split, &cfg);
        assert!(report.final_loss.is_finite());
    }
}

#[cfg(test)]
mod bpr_tests {
    use super::*;
    use crate::encoder::BackboneKind;
    use crate::model::{Objective, SeqRec};
    use ssdrec_data::{prepare, SyntheticConfig};

    #[test]
    fn bpr_objective_learns_ranking() {
        let ds = SyntheticConfig::beauty()
            .scaled(0.3)
            .with_seed(5)
            .generate();
        let (filtered, split) = prepare(&ds, 50, 2);
        let mut model = SeqRec::new(BackboneKind::Gru4Rec, filtered.num_items, 8, 50, 2);
        model.objective = Objective::Bpr { negatives: 4 };
        let cfg = TrainConfig {
            epochs: 5,
            batch_size: 32,
            patience: 10,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &split, &cfg);
        assert!(report.final_loss.is_finite() && report.final_loss > 0.0);
        let random = 20.0 / filtered.num_items as f64;
        assert!(report.test.hr20 > random, "BPR below random");
    }

    #[test]
    #[should_panic]
    fn bpr_rejects_zero_negatives() {
        let ds = SyntheticConfig::beauty()
            .scaled(0.1)
            .with_seed(6)
            .generate();
        let (filtered, split) = prepare(&ds, 50, 2);
        let mut model = SeqRec::new(BackboneKind::Gru4Rec, filtered.num_items, 8, 50, 3);
        model.objective = Objective::Bpr { negatives: 0 };
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 32,
            ..TrainConfig::default()
        };
        train(&mut model, &split, &cfg);
    }
}

#[cfg(test)]
mod schedule_tests {
    use super::*;

    #[test]
    fn warmup_factor_ramps_then_saturates() {
        let s = LrSchedule::WarmupLinear { warmup_steps: 10 };
        assert!((s.factor(1) - 0.1).abs() < 1e-6);
        assert!((s.factor(5) - 0.5).abs() < 1e-6);
        assert_eq!(s.factor(10), 1.0);
        assert_eq!(s.factor(1000), 1.0);
    }

    #[test]
    fn constant_and_zero_warmup_are_identity() {
        assert_eq!(LrSchedule::Constant.factor(1), 1.0);
        assert_eq!(LrSchedule::WarmupLinear { warmup_steps: 0 }.factor(1), 1.0);
    }

    #[test]
    fn warmup_training_runs() {
        use crate::encoder::BackboneKind;
        use crate::model::SeqRec;
        use ssdrec_data::{prepare, SyntheticConfig};
        let ds = SyntheticConfig::beauty()
            .scaled(0.1)
            .with_seed(9)
            .generate();
        let (filtered, split) = prepare(&ds, 50, 2);
        let mut model = SeqRec::new(BackboneKind::Gru4Rec, filtered.num_items, 8, 50, 0);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 32,
            lr_schedule: LrSchedule::WarmupLinear { warmup_steps: 5 },
            ..TrainConfig::default()
        };
        let report = train(&mut model, &split, &cfg);
        assert!(report.final_loss.is_finite());
    }
}
