//! [`SeqRec`]: a complete sequential recommender = item embeddings + a
//! backbone encoder + a tied-weight full-catalogue scorer, plus the
//! [`RecModel`] trait every trainable model in the workspace implements.

use ssdrec_data::Batch;
use ssdrec_tensor::nn::Embedding;
use ssdrec_tensor::{Binding, Graph, ParamStore, Rng, Tensor, Var};

use crate::backbones::{
    Bert4RecEncoder, CaserEncoder, Gru4RecEncoder, NarmEncoder, SasRecEncoder, StampEncoder,
};
use crate::encoder::{BackboneKind, SeqEncoder};

/// Build a boxed backbone encoder of the given kind.
///
/// Transformer backbones use 2 layers × 2 heads; Caser uses 16 filters per
/// height — scaled-down analogues of the paper's settings.
pub fn build_encoder(
    kind: BackboneKind,
    store: &mut ParamStore,
    d: usize,
    max_len: usize,
    rng: &mut Rng,
) -> Box<dyn SeqEncoder> {
    match kind {
        BackboneKind::Gru4Rec => Box::new(Gru4RecEncoder::new(store, d, rng)),
        BackboneKind::Narm => Box::new(NarmEncoder::new(store, d, rng)),
        BackboneKind::Stamp => Box::new(StampEncoder::new(store, d, rng)),
        BackboneKind::Caser => Box::new(CaserEncoder::new(store, d, 16, rng)),
        BackboneKind::SasRec => Box::new(SasRecEncoder::new(store, d, max_len, 2, 2, rng)),
        BackboneKind::Bert4Rec => Box::new(Bert4RecEncoder::new(store, d, max_len, 2, 2, rng)),
    }
}

/// Anything the shared trainer can optimise and evaluate.
pub trait RecModel {
    /// The parameter store (for binding/optimizer steps).
    fn store(&self) -> &ParamStore;
    /// Mutable access to the parameter store.
    fn store_mut(&mut self) -> &mut ParamStore;
    /// Training loss for one batch (stochastic parts enabled).
    fn loss(&self, g: &mut Graph, bind: &Binding, batch: &Batch, rng: &mut Rng) -> Var;
    /// Full-catalogue logits `B×(V+1)` for evaluation (deterministic).
    fn eval_scores(&self, g: &mut Graph, bind: &Binding, batch: &Batch) -> Var;
    /// Hook called after every optimisation step (e.g. τ annealing).
    fn after_step(&mut self) {}
    /// Hook called at the start of each epoch with `(epoch, total_epochs)`
    /// — used for curricula such as SSDRec's augmentation warm-up.
    fn on_epoch_start(&mut self, _epoch: usize, _total: usize) {}
    /// Display name.
    fn model_name(&self) -> String;

    /// Opaque model-side training state beyond the parameter store, as raw
    /// `u64` words — anything [`RecModel::after_step`] or
    /// [`RecModel::on_epoch_start`] mutates (step counters, annealed
    /// temperatures). Persisted in training checkpoints so `--resume`
    /// continues bit-identically. Stateless models return an empty vec.
    fn train_state(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restore state captured by [`RecModel::train_state`].
    ///
    /// # Panics
    /// The default (stateless) implementation panics on non-empty state:
    /// the checkpoint was written by a model with hidden training state
    /// this one cannot absorb.
    fn restore_train_state(&mut self, state: &[u64]) {
        assert!(
            state.is_empty(),
            "checkpoint carries {} words of model training state but {} is stateless",
            state.len(),
            self.model_name()
        );
    }

    /// Recommend the top-`k` items for a user given their history, as
    /// `(item, score)` pairs in descending score order. This is the
    /// serving-time API every model in the workspace shares.
    fn recommend(&self, user: usize, seq: &[usize], k: usize) -> Vec<(usize, f32)> {
        assert!(!seq.is_empty(), "cannot recommend from an empty history");
        let batch = Batch {
            users: vec![user],
            items: seq.to_vec(),
            seq_len: seq.len(),
            targets: vec![seq[seq.len() - 1]],
            noise: None,
        };
        let mut g = Graph::new();
        let bind = self.store().bind_all(&mut g);
        let scores = self.eval_scores(&mut g, &bind, &batch);
        // Partial select shared with the serving engine; the pad item
        // (index 0) is never returned and ties break to the lower item ID.
        ssdrec_metrics::par_top_k(g.value(scores).data(), k)
    }
}

/// Which training objective a [`SeqRec`] uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Objective {
    /// Cross-entropy at the final position only (the workspace default,
    /// shared by every model so Table III compares encoders, not losses).
    #[default]
    LastPosition,
    /// Autoregressive cross-entropy at *every* position (how the original
    /// SASRec is trained). Requires a causal encoder
    /// ([`SeqEncoder::encode_causal_all`]); falls back to last-position for
    /// non-causal backbones.
    AllPositions,
    /// Bayesian Personalized Ranking with sampled negatives — the
    /// "ranking-based loss" the paper attributes to GRU4Rec [12]. Pairwise:
    /// `−log σ(score(target) − score(negative))` averaged over `negatives`
    /// uniform non-target samples per example.
    Bpr {
        /// Negatives sampled per example.
        negatives: usize,
    },
}

/// Request-independent graph nodes precomputed once for frozen serving
/// (see [`SeqRec::precompute_frozen`]).
pub struct FrozenScorer {
    /// The untransposed item table `E`, shape `(V+1)×d` — the matrix the
    /// ANN retrieval index is built over and re-rank scores read from.
    pub table: Var,
    /// The transposed tied-weight scorer `Eᵀ`, shape `d×(V+1)`.
    pub table_t: Var,
    /// The `[V+1]` additive mask row with `−1e9` at the pad index.
    pub pad_mask: Var,
}

/// A vanilla sequential recommender: embeddings → encoder → tied scorer.
pub struct SeqRec {
    /// Trainable parameters.
    pub store: ParamStore,
    /// The `V+1 × d` item table (row 0 = padding).
    pub item_emb: Embedding,
    /// The backbone.
    pub encoder: Box<dyn SeqEncoder>,
    /// Embedding width.
    pub dim: usize,
    /// Dropout probability on embedded sequences during training.
    pub dropout: f32,
    /// Training objective.
    pub objective: Objective,
    num_items: usize,
}

impl SeqRec {
    /// Build a recommender with the given backbone.
    pub fn new(
        kind: BackboneKind,
        num_items: usize,
        dim: usize,
        max_len: usize,
        seed: u64,
    ) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(seed);
        let item_emb = Embedding::new(&mut store, "item", num_items + 1, dim, &mut rng);
        let encoder = build_encoder(kind, &mut store, dim, max_len, &mut rng);
        SeqRec {
            store,
            item_emb,
            encoder,
            dim,
            dropout: 0.1,
            objective: Objective::default(),
            num_items,
        }
    }

    /// Number of real items (catalogue size).
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Embed a batch's item IDs into `B×T×d`.
    pub fn embed_batch(&self, g: &mut Graph, bind: &Binding, batch: &Batch) -> Var {
        self.item_emb
            .lookup_seq(g, bind, &batch.items, batch.len(), batch.seq_len)
    }

    /// Score a sequence representation `B×d` against the whole catalogue,
    /// with the padding item masked out: `h_S · Eᵀ` (tied weights).
    pub fn score_repr(&self, g: &mut Graph, bind: &Binding, h_s: Var) -> Var {
        let table = self.item_emb.table(bind);
        let tt = g.transpose_last(table); // d×(V+1)
        let logits = g.matmul(h_s, tt); // B×(V+1)
        let mut mask = Tensor::zeros(&[self.num_items + 1]);
        mask.data_mut()[0] = -1e9;
        let mv = g.constant(mask);
        g.add_bcast(logits, mv)
    }

    /// Precompute the request-independent pieces of the frozen serving
    /// forward pass: the transposed tied-weight scorer `Eᵀ` and the
    /// pad-masking row. Bind the store into an inference graph once, call
    /// this below the [`Graph::mark`], and feed the result to
    /// [`SeqRec::eval_scores_frozen`] per request.
    pub fn precompute_frozen(&self, g: &mut Graph, bind: &Binding) -> FrozenScorer {
        let table = self.item_emb.table(bind);
        let table_t = g.transpose_last(table); // d×(V+1)
        let mut mask = Tensor::zeros(&[self.num_items + 1]);
        mask.data_mut()[0] = -1e9;
        let pad_mask = g.constant(mask);
        FrozenScorer {
            table,
            table_t,
            pad_mask,
        }
    }

    /// The request-dependent half of the frozen forward, stopped at the
    /// sequence representation `h_S` (`B×d`) — the same nodes, in the same
    /// order, as the front of [`SeqRec::eval_scores_frozen`]. ANN retrieval
    /// uses this as the query vector and defers catalogue scoring to the
    /// candidate re-rank.
    pub fn eval_repr_frozen(&self, g: &mut Graph, bind: &Binding, batch: &Batch) -> Var {
        let h = self.embed_batch(g, bind, batch);
        self.encoder.encode(g, bind, h)
    }

    /// Frozen-serving forward: identical kernels (and therefore bit-identical
    /// scores) to [`RecModel::eval_scores`], but scoring against the
    /// precomputed transposed table instead of re-deriving it per request.
    pub fn eval_scores_frozen(
        &self,
        g: &mut Graph,
        bind: &Binding,
        batch: &Batch,
        frozen: &FrozenScorer,
    ) -> Var {
        let h_s = self.eval_repr_frozen(g, bind, batch);
        let logits = g.matmul(h_s, frozen.table_t);
        g.add_bcast(logits, frozen.pad_mask)
    }

    /// Full forward for a batch; `rng` enables dropout (training mode).
    pub fn forward(
        &self,
        g: &mut Graph,
        bind: &Binding,
        batch: &Batch,
        rng: Option<&mut Rng>,
    ) -> Var {
        let mut h = self.embed_batch(g, bind, batch);
        if let Some(rng) = rng {
            if self.dropout > 0.0 {
                let mask = rng.dropout_mask(g.value(h).len(), self.dropout);
                h = g.dropout_with_mask(h, mask);
            }
        }
        let h_s = self.encoder.encode(g, bind, h);
        self.score_repr(g, bind, h_s)
    }

    /// Full-catalogue cross-entropy against the batch targets.
    pub fn ce_loss(&self, g: &mut Graph, logits: Var, targets: &[usize]) -> Var {
        let logp = g.log_softmax_last(logits);
        let picked = g.pick_per_row(logp, targets);
        let mean = g.mean_all(picked);
        g.neg(mean)
    }

    /// BPR pairwise ranking loss over sampled negatives.
    fn bpr_loss(
        &self,
        g: &mut Graph,
        bind: &Binding,
        batch: &Batch,
        rng: &mut Rng,
        negatives: usize,
    ) -> Var {
        assert!(negatives > 0, "BPR needs at least one negative");
        let mut h = self.embed_batch(g, bind, batch);
        if self.dropout > 0.0 {
            let mask = rng.dropout_mask(g.value(h).len(), self.dropout);
            h = g.dropout_with_mask(h, mask);
        }
        let h_s = self.encoder.encode(g, bind, h); // B×d
        let tgt = self.item_emb.lookup(g, bind, &batch.targets); // B×d
        let pm = g.mul(h_s, tgt);
        let pos = g.sum_last(pm); // B

        let mut total: Option<Var> = None;
        for _ in 0..negatives {
            let neg_ids: Vec<usize> = batch
                .targets
                .iter()
                .map(|&t| {
                    let mut n = rng.below(self.num_items) + 1;
                    if n == t {
                        n = n % self.num_items + 1;
                    }
                    n
                })
                .collect();
            let neg = self.item_emb.lookup(g, bind, &neg_ids);
            let nm = g.mul(h_s, neg);
            let negs = g.sum_last(nm);
            let diff = g.sub(pos, negs);
            let p = g.sigmoid(diff);
            let l = g.ln(p);
            let l = g.mean_all(l);
            total = Some(match total {
                None => l,
                Some(t) => g.add(t, l),
            });
        }
        let sum = total.expect("negatives > 0");
        let mean = g.scale(sum, 1.0 / negatives as f32);
        g.neg(mean)
    }

    /// Autoregressive loss: every causal position `t` predicts the item at
    /// `t+1` (the batch target for the final position). Returns `None` when
    /// the encoder is not position-wise causal.
    fn all_positions_loss(
        &self,
        g: &mut Graph,
        bind: &Binding,
        batch: &Batch,
        rng: &mut Rng,
    ) -> Option<Var> {
        let b = batch.len();
        let t = batch.seq_len;
        let mut h = self.embed_batch(g, bind, batch);
        if self.dropout > 0.0 {
            let mask = rng.dropout_mask(g.value(h).len(), self.dropout);
            h = g.dropout_with_mask(h, mask);
        }
        let states = self.encoder.encode_causal_all(g, bind, h)?; // B×T×d
        let flat = g.reshape(states, &[b * t, self.dim]);
        let logits = self.score_repr(g, bind, flat); // (B·T)×(V+1)
                                                     // Position t predicts s_{t+1}; the last position predicts the target.
        let mut targets = Vec::with_capacity(b * t);
        for i in 0..b {
            let seq = batch.seq(i);
            for ti in 0..t {
                targets.push(if ti + 1 < t {
                    seq[ti + 1]
                } else {
                    batch.targets[i]
                });
            }
        }
        Some(self.ce_loss(g, logits, &targets))
    }
}

impl RecModel for SeqRec {
    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn loss(&self, g: &mut Graph, bind: &Binding, batch: &Batch, rng: &mut Rng) -> Var {
        match self.objective {
            Objective::AllPositions => {
                if let Some(loss) = self.all_positions_loss(g, bind, batch, rng) {
                    return loss;
                }
            }
            Objective::Bpr { negatives } => {
                return self.bpr_loss(g, bind, batch, rng, negatives);
            }
            Objective::LastPosition => {}
        }
        let logits = self.forward(g, bind, batch, Some(rng));
        self.ce_loss(g, logits, &batch.targets)
    }

    fn eval_scores(&self, g: &mut Graph, bind: &Binding, batch: &Batch) -> Var {
        self.forward(g, bind, batch, None)
    }

    fn model_name(&self) -> String {
        self.encoder.name().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdrec_data::Example;

    fn toy_batch() -> Batch {
        Batch {
            users: vec![0, 1],
            items: vec![1, 2, 3, 4, 5, 6],
            seq_len: 3,
            targets: vec![4, 1],
            noise: None,
        }
    }

    #[test]
    fn forward_scores_have_catalogue_width() {
        let model = SeqRec::new(BackboneKind::Gru4Rec, 10, 8, 20, 0);
        let mut g = Graph::new();
        let bind = model.store.bind_all(&mut g);
        let s = model.forward(&mut g, &bind, &toy_batch(), None);
        assert_eq!(g.value(s).shape(), &[2, 11]);
    }

    #[test]
    fn pad_item_never_recommended() {
        let model = SeqRec::new(BackboneKind::SasRec, 10, 8, 20, 1);
        let mut g = Graph::new();
        let bind = model.store.bind_all(&mut g);
        let s = model.forward(&mut g, &bind, &toy_batch(), None);
        for row in g.value(s).data().chunks(11) {
            assert!(row[0] < -1e8, "pad score {}", row[0]);
        }
    }

    #[test]
    fn loss_is_finite_and_positive() {
        let model = SeqRec::new(BackboneKind::Narm, 10, 8, 20, 2);
        let mut g = Graph::new();
        let bind = model.store.bind_all(&mut g);
        let mut rng = Rng::seed(0);
        let loss = model.loss(&mut g, &bind, &toy_batch(), &mut rng);
        let lv = g.value(loss).item();
        assert!(lv.is_finite() && lv > 0.0, "loss {lv}");
    }

    #[test]
    fn eval_is_deterministic() {
        let model = SeqRec::new(BackboneKind::Stamp, 10, 8, 20, 3);
        let run = || {
            let mut g = Graph::new();
            let bind = model.store.bind_all(&mut g);
            let s = model.eval_scores(&mut g, &bind, &toy_batch());
            g.value(s).data().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn recommend_returns_sorted_topk_without_pad() {
        let model = SeqRec::new(BackboneKind::SasRec, 10, 8, 20, 5);
        let recs = model.recommend(0, &[1, 2, 3], 5);
        assert_eq!(recs.len(), 5);
        assert!(recs.iter().all(|&(i, _)| (1..=10).contains(&i)));
        for w in recs.windows(2) {
            assert!(w[0].1 >= w[1].1, "not sorted: {recs:?}");
        }
    }

    #[test]
    fn recommend_k_larger_than_catalogue_is_clamped() {
        let model = SeqRec::new(BackboneKind::Gru4Rec, 4, 8, 20, 6);
        let recs = model.recommend(0, &[1, 2], 100);
        assert_eq!(recs.len(), 4);
    }

    #[test]
    #[should_panic]
    fn recommend_rejects_empty_history() {
        let model = SeqRec::new(BackboneKind::Gru4Rec, 4, 8, 20, 7);
        model.recommend(0, &[], 3);
    }

    #[test]
    fn example_roundtrip_through_batching() {
        let examples = vec![Example {
            user: 0,
            seq: vec![1, 2],
            target: 3,
            noise: None,
        }];
        let batches = ssdrec_data::make_batches(&examples, 8, 0);
        let model = SeqRec::new(BackboneKind::Caser, 5, 8, 20, 4);
        let mut g = Graph::new();
        let bind = model.store.bind_all(&mut g);
        let s = model.eval_scores(&mut g, &bind, &batches[0]);
        assert_eq!(g.value(s).shape(), &[1, 6]);
    }
}
