//! Resumable training checkpoints: the full trainer state — parameter
//! values, Adam moments and step count, the RNG stream, epoch/patience
//! counters and the best-so-far snapshot — serialised to a self-describing
//! binary format so `--resume` continues **bit-identically** to an
//! uninterrupted run.
//!
//! Format `SSTC` v1 (little-endian):
//! ```text
//! magic   "SSTC" (4 bytes), version u32
//! next_epoch u32, since_best u32
//! adam_steps u64, rng_state u64×4
//! best_hr20 f64-bits u64, total_train_secs f64-bits u64
//! final_loss f32-bits u32
//! best_valid f64-bits u64 × 7      — hr5 hr10 hr20 ndcg5 ndcg10 ndcg20 mrr20
//! model_state: count u32, u64 × count
//! params: count u32, then per tensor:
//!   name_len u32, name bytes, ndim u32, dims u32×ndim,
//!   value f32×len, adam_m f32×len, adam_v f32×len
//! best_snapshot: count u32, then per tensor: ndim u32, dims u32×ndim,
//!   data f32×len
//! ```
//!
//! Writes are atomic (temp file + rename via
//! [`ssdrec_tensor::persist::atomic_write`], fault site `ckpt.save`): a
//! crash mid-save never replaces a good checkpoint with a torn one.
//! Loading is strict — tensor names and shapes must match the live model
//! exactly, and every failure names the offending tensor.

use std::io::{self, Read, Write};
use std::path::Path;

use ssdrec_metrics::MetricReport;
use ssdrec_tensor::persist::atomic_write;
use ssdrec_tensor::{ParamStore, Tensor};

use crate::model::RecModel;

const MAGIC: &[u8; 4] = b"SSTC";
const VERSION: u32 = 1;

/// When and where the trainer checkpoints, and whether it resumes.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Path of the training-state file.
    pub path: std::path::PathBuf,
    /// Save every `every` epochs (and always on stop). 0 is treated as 1.
    pub every: usize,
    /// If the state file exists, restore it and continue from `next_epoch`.
    pub resume: bool,
}

impl CheckpointConfig {
    /// Checkpoint to `path` every epoch, without resuming.
    pub fn new(path: impl Into<std::path::PathBuf>) -> Self {
        CheckpointConfig {
            path: path.into(),
            every: 1,
            resume: false,
        }
    }
}

/// Everything the trainer needs to continue a run bit-identically.
#[derive(Clone, Debug)]
pub struct TrainState {
    /// The epoch the resumed loop starts at (epochs completed so far).
    pub next_epoch: u32,
    /// Early-stopping counter: epochs since the best validation HR@20.
    pub since_best: u32,
    /// Adam update count (bias correction depends on it).
    pub adam_steps: u64,
    /// The trainer RNG's raw xoshiro256** state.
    pub rng_state: [u64; 4],
    /// Best validation HR@20 so far.
    pub best_hr20: f64,
    /// Accumulated training wall-clock seconds (reporting only; not part
    /// of the bit-identity contract).
    pub total_train_secs: f64,
    /// Last epoch's mean training loss.
    pub final_loss: f32,
    /// Validation metrics of the best epoch.
    pub best_valid: MetricReport,
    /// Opaque model-side state ([`RecModel::train_state`]).
    pub model_state: Vec<u64>,
    /// Per-parameter `(name, value, adam_m, adam_v)`.
    pub params: Vec<(String, Tensor, Tensor, Tensor)>,
    /// Parameter values of the best epoch (early-stopping restore target).
    pub best_snapshot: Vec<Tensor>,
}

impl TrainState {
    /// Capture the store side of the state (values + Adam moments) from a
    /// model. The caller fills in the scalar counters.
    pub fn capture_params<M: RecModel>(model: &M) -> Vec<(String, Tensor, Tensor, Tensor)> {
        let store = model.store();
        (0..store.num_tensors())
            .map(|i| {
                let p = ParamStore::param_ref_by_index(i);
                let (m, v) = store.moments(p);
                (
                    store.name(p).to_string(),
                    store.get(p).clone(),
                    m.clone(),
                    v.clone(),
                )
            })
            .collect()
    }

    /// Restore parameter values, Adam moments and model-side state into a
    /// freshly built model. Strict: names and shapes must match.
    pub fn apply_to<M: RecModel>(&self, model: &mut M) -> Result<(), String> {
        let store = model.store_mut();
        if self.params.len() != store.num_tensors() {
            return Err(format!(
                "checkpoint has {} tensors, model has {}",
                self.params.len(),
                store.num_tensors()
            ));
        }
        for (i, (name, value, m, v)) in self.params.iter().enumerate() {
            let p = ParamStore::param_ref_by_index(i);
            if store.name(p) != name {
                return Err(format!(
                    "tensor {i}: checkpoint name {name:?} vs model {:?}",
                    store.name(p)
                ));
            }
            if store.get(p).shape() != value.shape() {
                return Err(format!(
                    "tensor {i} ({name}): checkpoint shape {:?} vs model {:?}",
                    value.shape(),
                    store.get(p).shape()
                ));
            }
            *store.get_mut(p) = value.clone();
            store.set_moments(p, m.clone(), v.clone());
        }
        model.restore_train_state(&self.model_state);
        Ok(())
    }
}

fn w_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn w_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn r_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn r_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn w_tensor(w: &mut impl Write, t: &Tensor) -> io::Result<()> {
    w_u32(w, t.ndim() as u32)?;
    for &d in t.shape() {
        w_u32(w, d as u32)?;
    }
    for &x in t.data() {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn r_tensor(r: &mut impl Read) -> io::Result<Tensor> {
    let ndim = r_u32(r)? as usize;
    let mut shape = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        shape.push(r_u32(r)? as usize);
    }
    let n: usize = shape.iter().product();
    let mut data = vec![0f32; n];
    for x in data.iter_mut() {
        let mut b = [0u8; 4];
        r.read_exact(&mut b)?;
        *x = f32::from_le_bytes(b);
    }
    Ok(Tensor::new(data, &shape))
}

/// Atomically serialise a [`TrainState`] to `path` (fault site `ckpt.save`).
pub fn save_train_state(st: &TrainState, path: impl AsRef<Path>) -> io::Result<()> {
    atomic_write(path.as_ref(), "ckpt.save", |w| {
        w.write_all(MAGIC)?;
        w_u32(w, VERSION)?;
        w_u32(w, st.next_epoch)?;
        w_u32(w, st.since_best)?;
        w_u64(w, st.adam_steps)?;
        for &s in &st.rng_state {
            w_u64(w, s)?;
        }
        w_u64(w, st.best_hr20.to_bits())?;
        w_u64(w, st.total_train_secs.to_bits())?;
        w_u32(w, st.final_loss.to_bits())?;
        let bv = &st.best_valid;
        for m in [
            bv.hr5, bv.hr10, bv.hr20, bv.ndcg5, bv.ndcg10, bv.ndcg20, bv.mrr20,
        ] {
            w_u64(w, m.to_bits())?;
        }
        w_u32(w, st.model_state.len() as u32)?;
        for &s in &st.model_state {
            w_u64(w, s)?;
        }
        w_u32(w, st.params.len() as u32)?;
        for (name, value, m, v) in &st.params {
            w_u32(w, name.len() as u32)?;
            w.write_all(name.as_bytes())?;
            w_u32(w, value.ndim() as u32)?;
            for &d in value.shape() {
                w_u32(w, d as u32)?;
            }
            for t in [value, m, v] {
                for &x in t.data() {
                    w.write_all(&x.to_le_bytes())?;
                }
            }
        }
        w_u32(w, st.best_snapshot.len() as u32)?;
        for t in &st.best_snapshot {
            w_tensor(w, t)?;
        }
        Ok(())
    })
}

/// Load a [`TrainState`] from `path`. Validation against the live model
/// happens in [`TrainState::apply_to`].
pub fn load_train_state(path: impl AsRef<Path>) -> io::Result<TrainState> {
    let mut r = io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(err("not an SSTC training checkpoint"));
    }
    let version = r_u32(&mut r)?;
    if version != VERSION {
        return Err(err(format!(
            "unsupported training-checkpoint version {version}"
        )));
    }
    let next_epoch = r_u32(&mut r)?;
    let since_best = r_u32(&mut r)?;
    let adam_steps = r_u64(&mut r)?;
    let mut rng_state = [0u64; 4];
    for s in &mut rng_state {
        *s = r_u64(&mut r)?;
    }
    let best_hr20 = f64::from_bits(r_u64(&mut r)?);
    let total_train_secs = f64::from_bits(r_u64(&mut r)?);
    let final_loss = f32::from_bits(r_u32(&mut r)?);
    let mut bv = [0f64; 7];
    for m in &mut bv {
        *m = f64::from_bits(r_u64(&mut r)?);
    }
    let best_valid = MetricReport {
        hr5: bv[0],
        hr10: bv[1],
        hr20: bv[2],
        ndcg5: bv[3],
        ndcg10: bv[4],
        ndcg20: bv[5],
        mrr20: bv[6],
    };
    let n_state = r_u32(&mut r)? as usize;
    let mut model_state = Vec::with_capacity(n_state);
    for _ in 0..n_state {
        model_state.push(r_u64(&mut r)?);
    }
    let n_params = r_u32(&mut r)? as usize;
    let mut params = Vec::with_capacity(n_params);
    for i in 0..n_params {
        let named = |name: &str, e: io::Error| err(format!("tensor {i} ({name}): {e}"));
        let name_len = r_u32(&mut r).map_err(|e| named("<header>", e))? as usize;
        let mut name_bytes = vec![0u8; name_len];
        r.read_exact(&mut name_bytes)
            .map_err(|e| named("<header>", e))?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| err(format!("tensor {i}: invalid name encoding")))?;
        let ndim = r_u32(&mut r).map_err(|e| named(&name, e))? as usize;
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(r_u32(&mut r).map_err(|e| named(&name, e))? as usize);
        }
        let n: usize = shape.iter().product();
        let read_t = |r: &mut dyn Read| -> io::Result<Tensor> {
            let mut data = vec![0f32; n];
            for x in data.iter_mut() {
                let mut b = [0u8; 4];
                r.read_exact(&mut b)?;
                *x = f32::from_le_bytes(b);
            }
            Ok(Tensor::new(data, &shape))
        };
        let value = read_t(&mut r).map_err(|e| named(&name, e))?;
        let m = read_t(&mut r).map_err(|e| named(&name, e))?;
        let v = read_t(&mut r).map_err(|e| named(&name, e))?;
        params.push((name, value, m, v));
    }
    let n_snap = r_u32(&mut r)? as usize;
    let mut best_snapshot = Vec::with_capacity(n_snap);
    for i in 0..n_snap {
        best_snapshot.push(r_tensor(&mut r).map_err(|e| err(format!("snapshot tensor {i}: {e}")))?);
    }
    Ok(TrainState {
        next_epoch,
        since_best,
        adam_steps,
        rng_state,
        best_hr20,
        total_train_secs,
        final_loss,
        best_valid,
        model_state,
        params,
        best_snapshot,
    })
}
