//! # ssdrec-models
//!
//! The six sequential-recommender backbones the paper evaluates (Table III):
//! GRU4Rec, NARM, STAMP, Caser, SASRec and BERT4Rec — all re-implemented on
//! the workspace's autograd substrate — plus the shared [`trainer`] used by
//! every model in the workspace (Adam, full-ranking CE, early stopping) and
//! the CL4SRec-style [`contrastive`] head (seeded view augmentation +
//! InfoNCE, DESIGN.md §15).

#![warn(missing_docs)]

pub mod backbones;
pub mod checkpoint;
pub mod contrastive;
pub mod encoder;
pub mod model;
pub mod trainer;

pub use backbones::{
    Bert4RecEncoder, CaserEncoder, Gru4RecEncoder, NarmEncoder, PositionalEmbedding, SasRecEncoder,
    StampEncoder,
};
pub use checkpoint::{load_train_state, save_train_state, CheckpointConfig, TrainState};
pub use contrastive::{
    augment_view, augment_views, info_nce, view_rng, ContrastiveSeqRec, DEFAULT_AUG_RATE,
    DEFAULT_CL_TAU, DEFAULT_CL_WEIGHT,
};
pub use encoder::{BackboneKind, SeqEncoder};
pub use model::{build_encoder, FrozenScorer, Objective, RecModel, SeqRec};
pub use trainer::{
    evaluate, evaluate_source_with, evaluate_with, train, train_from_source,
    train_with_checkpoints, train_with_warm_start, LrSchedule, SourceSplit, TrainConfig,
    TrainReport,
};
