//! The six backbone encoders compared in the paper's Table III.
//!
//! Every backbone is re-implemented from its defining equations on the
//! workspace's autograd substrate. Architectural simplifications forced by
//! the substrate are noted per model and kept faithful in *shape*: what each
//! model can and cannot express is preserved.

use ssdrec_tensor::nn::{causal_mask, Gru, Linear, TransformerBlock};
use ssdrec_tensor::{Activation, Binding, Graph, ParamRef, ParamStore, Rng, Tensor, Var};

use crate::encoder::SeqEncoder;

/// GRU4Rec [12]: a GRU over the sequence; the last hidden state is the
/// sequence representation.
pub struct Gru4RecEncoder {
    gru: Gru,
}

impl Gru4RecEncoder {
    /// Build with hidden width equal to the embedding width `d`.
    pub fn new(store: &mut ParamStore, d: usize, rng: &mut Rng) -> Self {
        Gru4RecEncoder {
            gru: Gru::new(store, "gru4rec", d, d, rng),
        }
    }
}

impl SeqEncoder for Gru4RecEncoder {
    fn encode(&self, g: &mut Graph, bind: &Binding, h_seq: Var) -> Var {
        let (_, last) = self.gru.forward(g, bind, h_seq);
        last
    }

    fn encode_causal_all(&self, g: &mut Graph, bind: &Binding, h_seq: Var) -> Option<Var> {
        // A left-to-right GRU is causal by construction.
        let (all, _) = self.gru.forward(g, bind, h_seq);
        Some(all)
    }

    fn name(&self) -> &'static str {
        "GRU4Rec"
    }
}

/// NARM [14]: a GRU encoder with a hybrid global/local readout. The global
/// part is the last hidden state; the local part attends over all hidden
/// states with the last state as query.
pub struct NarmEncoder {
    gru: Gru,
    a1: Linear,
    a2: Linear,
    v: Linear,
    out: Linear,
}

impl NarmEncoder {
    /// Build with hidden width `d`.
    pub fn new(store: &mut ParamStore, d: usize, rng: &mut Rng) -> Self {
        NarmEncoder {
            gru: Gru::new(store, "narm.gru", d, d, rng),
            a1: Linear::new_no_bias(store, "narm.a1", d, d, rng),
            a2: Linear::new_no_bias(store, "narm.a2", d, d, rng),
            v: Linear::new_no_bias(store, "narm.v", d, 1, rng),
            out: Linear::new(store, "narm.out", 2 * d, d, rng),
        }
    }
}

impl SeqEncoder for NarmEncoder {
    fn encode(&self, g: &mut Graph, bind: &Binding, h_seq: Var) -> Var {
        let (b, t, _d) = g.value(h_seq).dims3();
        let (hs, h_last) = self.gru.forward(g, bind, h_seq);
        // e_t = v ⋅ sigmoid(A1 h_t + A2 h_last)
        let k = self.a1.forward(g, bind, hs); // B×T×d
        let q = self.a2.forward(g, bind, h_last); // B×d
        let q3 = g.stack_time(&vec![q; t]); // B×T×d
        let s = g.add(k, q3);
        let s = g.sigmoid(s);
        let e = self.v.forward(g, bind, s); // B×T×1
        let e = g.reshape(e, &[b, t]);
        let a = g.softmax_last(e); // B×T
        let a3 = g.reshape(a, &[b, 1, t]);
        let local = g.matmul(a3, hs); // B×1×d
        let local = g.reshape(local, &[b, g.value(h_seq).dims3().2]);
        let both = g.concat_last(&[h_last, local]);
        self.out.forward(g, bind, both)
    }

    fn name(&self) -> &'static str {
        "NARM"
    }
}

/// STAMP [40]: attention over items with the last click and the session
/// memory (mean) as context; output is the element-wise product of the
/// transformed attention vector and the transformed last click.
pub struct StampEncoder {
    w1: Linear,
    w2: Linear,
    w3: Linear,
    w0: Linear,
    mlp_a: Linear,
    mlp_b: Linear,
}

impl StampEncoder {
    /// Build with width `d`.
    pub fn new(store: &mut ParamStore, d: usize, rng: &mut Rng) -> Self {
        StampEncoder {
            w1: Linear::new_no_bias(store, "stamp.w1", d, d, rng),
            w2: Linear::new_no_bias(store, "stamp.w2", d, d, rng),
            w3: Linear::new(store, "stamp.w3", d, d, rng),
            w0: Linear::new_no_bias(store, "stamp.w0", d, 1, rng),
            mlp_a: Linear::new(store, "stamp.mlp_a", d, d, rng),
            mlp_b: Linear::new(store, "stamp.mlp_b", d, d, rng),
        }
    }
}

impl SeqEncoder for StampEncoder {
    fn encode(&self, g: &mut Graph, bind: &Binding, h_seq: Var) -> Var {
        let (b, t, d) = g.value(h_seq).dims3();
        let ms = g.mean_time(h_seq); // B×d session memory
        let xt = g.select_time(h_seq, t - 1); // B×d last click
        let k = self.w1.forward(g, bind, h_seq); // B×T×d
        let qt = self.w2.forward(g, bind, xt);
        let qm = self.w3.forward(g, bind, ms);
        let q = g.add(qt, qm);
        let q3 = g.stack_time(&vec![q; t]);
        let s = g.add(k, q3);
        let s = g.sigmoid(s);
        let e = self.w0.forward(g, bind, s); // B×T×1
        let e = g.reshape(e, &[b, t]);
        // STAMP uses unnormalised attention; a softmax is substituted for
        // numerical stability (shape-preserving).
        let a = g.softmax_last(e);
        let a3 = g.reshape(a, &[b, 1, t]);
        let ma = g.matmul(a3, h_seq);
        let ma = g.reshape(ma, &[b, d]);
        let hs_vec = self.mlp_a.forward_act(g, bind, ma, Activation::Tanh);
        let ht_vec = self.mlp_b.forward_act(g, bind, xt, Activation::Tanh);
        g.mul(hs_vec, ht_vec)
    }

    fn name(&self) -> &'static str {
        "STAMP"
    }
}

/// Caser [15]: horizontal convolutions of heights {2, 3} with max-over-time
/// pooling plus a vertical component.
///
/// Substrate note: Caser's vertical convolution has one weight per time
/// step, which is ill-defined under variable-length batches; it is realised
/// here as a learned projection of the temporal mean (a uniform vertical
/// filter), preserving the "aggregate over the full sequence" role.
pub struct CaserEncoder {
    h2: Linear,
    h3: Linear,
    vert: Linear,
    out: Linear,
    filters: usize,
}

impl CaserEncoder {
    /// Build with `filters` filters per horizontal height.
    pub fn new(store: &mut ParamStore, d: usize, filters: usize, rng: &mut Rng) -> Self {
        CaserEncoder {
            h2: Linear::new(store, "caser.h2", 2 * d, filters, rng),
            h3: Linear::new(store, "caser.h3", 3 * d, filters, rng),
            vert: Linear::new(store, "caser.vert", d, filters, rng),
            out: Linear::new(store, "caser.out", 3 * filters, d, rng),
            filters,
        }
    }

    /// Horizontal convolution of height `h` + ReLU + max-over-time.
    fn horizontal(&self, g: &mut Graph, bind: &Binding, h_seq: Var, h: usize, lin: &Linear) -> Var {
        let (b, t, d) = g.value(h_seq).dims3();
        if t < h {
            return g.constant(Tensor::zeros(&[b, self.filters]));
        }
        let mut pooled: Option<Var> = None;
        for start in 0..=(t - h) {
            let win = g.slice_time(h_seq, start, h); // B×h×d
            let flat = g.reshape(win, &[b, h * d]);
            let f = lin.forward_act(g, bind, flat, Activation::Relu);
            pooled = Some(match pooled {
                None => f,
                Some(p) => g.max2(p, f),
            });
        }
        pooled.expect("t >= h")
    }
}

impl SeqEncoder for CaserEncoder {
    fn encode(&self, g: &mut Graph, bind: &Binding, h_seq: Var) -> Var {
        let o2 = self.horizontal(g, bind, h_seq, 2, &self.h2);
        let o3 = self.horizontal(g, bind, h_seq, 3, &self.h3);
        let mean = g.mean_time(h_seq);
        let ov = self.vert.forward_act(g, bind, mean, Activation::Relu);
        let cat = g.concat_last(&[o2, o3, ov]);
        self.out.forward(g, bind, cat)
    }

    fn name(&self) -> &'static str {
        "Caser"
    }
}

/// Learnable positional embedding shared by the transformer backbones.
pub struct PositionalEmbedding {
    w: ParamRef,
    max_len: usize,
}

impl PositionalEmbedding {
    /// Build for positions `0..max_len`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        max_len: usize,
        d: usize,
        rng: &mut Rng,
    ) -> Self {
        let w = store.add_xavier(format!("{name}.pos"), &[max_len, d], rng);
        PositionalEmbedding { w, max_len }
    }

    /// Add positional encodings to `h_seq` (`B×T×d`, `T ≤ max_len`).
    pub fn add_to(&self, g: &mut Graph, bind: &Binding, h_seq: Var) -> Var {
        let (_b, t, _d) = g.value(h_seq).dims3();
        assert!(
            t <= self.max_len,
            "sequence length {t} exceeds max_len {}",
            self.max_len
        );
        let idx: Vec<usize> = (0..t).collect();
        let w = bind.var(self.w);
        let pos = g.embedding(w, &idx); // T×d — a suffix of B×T×d
        g.add_bcast(h_seq, pos)
    }
}

/// SASRec [16]: stacked causal self-attention blocks; the representation is
/// the output at the last position.
pub struct SasRecEncoder {
    pos: PositionalEmbedding,
    blocks: Vec<TransformerBlock>,
}

impl SasRecEncoder {
    /// Build with `layers` blocks of `heads` heads.
    pub fn new(
        store: &mut ParamStore,
        d: usize,
        max_len: usize,
        layers: usize,
        heads: usize,
        rng: &mut Rng,
    ) -> Self {
        let pos = PositionalEmbedding::new(store, "sasrec", max_len, d, rng);
        let blocks = (0..layers)
            .map(|i| TransformerBlock::new(store, &format!("sasrec.blk{i}"), d, heads, rng))
            .collect();
        SasRecEncoder { pos, blocks }
    }
}

impl SeqEncoder for SasRecEncoder {
    fn encode(&self, g: &mut Graph, bind: &Binding, h_seq: Var) -> Var {
        let (_b, t, _d) = g.value(h_seq).dims3();
        let all = self
            .encode_causal_all(g, bind, h_seq)
            .expect("SASRec is causal");
        g.select_time(all, t - 1)
    }

    fn encode_causal_all(&self, g: &mut Graph, bind: &Binding, h_seq: Var) -> Option<Var> {
        let (_b, t, _d) = g.value(h_seq).dims3();
        let mut x = self.pos.add_to(g, bind, h_seq);
        let mask = g.constant(causal_mask(t));
        for blk in &self.blocks {
            x = blk.forward(g, bind, x, Some(mask));
        }
        Some(x)
    }

    fn name(&self) -> &'static str {
        "SASRec"
    }
}

/// BERT4Rec [17]: stacked *bidirectional* self-attention blocks; read out at
/// the last position.
///
/// Substrate note: the cloze (masked-item) pre-training objective is
/// replaced by the same next-item objective all models share, so that
/// Table III compares encoders under one loss; the architecture (full
/// bidirectional attention) is unchanged.
pub struct Bert4RecEncoder {
    pos: PositionalEmbedding,
    blocks: Vec<TransformerBlock>,
}

impl Bert4RecEncoder {
    /// Build with `layers` blocks of `heads` heads.
    pub fn new(
        store: &mut ParamStore,
        d: usize,
        max_len: usize,
        layers: usize,
        heads: usize,
        rng: &mut Rng,
    ) -> Self {
        let pos = PositionalEmbedding::new(store, "bert4rec", max_len, d, rng);
        let blocks = (0..layers)
            .map(|i| TransformerBlock::new(store, &format!("bert4rec.blk{i}"), d, heads, rng))
            .collect();
        Bert4RecEncoder { pos, blocks }
    }
}

impl SeqEncoder for Bert4RecEncoder {
    fn encode(&self, g: &mut Graph, bind: &Binding, h_seq: Var) -> Var {
        let (_b, t, _d) = g.value(h_seq).dims3();
        let mut x = self.pos.add_to(g, bind, h_seq);
        for blk in &self.blocks {
            x = blk.forward(g, bind, x, None);
        }
        g.select_time(x, t - 1)
    }

    fn name(&self) -> &'static str {
        "BERT4Rec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::BackboneKind;
    use crate::model::build_encoder;

    fn rand_seq(b: usize, t: usize, d: usize, seed: u64) -> Tensor {
        let mut rng = Rng::seed(seed);
        Tensor::new(
            (0..b * t * d).map(|_| rng.uniform(-1.0, 1.0)).collect(),
            &[b, t, d],
        )
    }

    #[test]
    fn all_backbones_emit_correct_shape() {
        for kind in BackboneKind::all() {
            let mut store = ParamStore::new();
            let mut rng = Rng::seed(0);
            let enc = build_encoder(kind, &mut store, 8, 20, &mut rng);
            let mut g = Graph::new();
            let bind = store.bind_all(&mut g);
            let x = g.constant(rand_seq(3, 6, 8, 1));
            let out = enc.encode(&mut g, &bind, x);
            assert_eq!(g.value(out).shape(), &[3, 8], "{}", enc.name());
            assert!(!g.value(out).has_non_finite(), "{}", enc.name());
        }
    }

    #[test]
    fn all_backbones_backprop_to_input() {
        for kind in BackboneKind::all() {
            let mut store = ParamStore::new();
            let mut rng = Rng::seed(2);
            let enc = build_encoder(kind, &mut store, 8, 20, &mut rng);
            let mut g = Graph::new();
            let bind = store.bind_all(&mut g);
            let x = g.param(rand_seq(2, 5, 8, 3));
            let out = enc.encode(&mut g, &bind, x);
            let sq = g.mul(out, out);
            let loss = g.sum_all(sq);
            let grads = g.backward(loss);
            let gx = grads
                .get(x)
                .unwrap_or_else(|| panic!("{}: no input grad", enc.name()));
            assert!(
                gx.data().iter().any(|&v| v != 0.0),
                "{}: zero grad",
                enc.name()
            );
        }
    }

    #[test]
    fn backbones_handle_minimal_length() {
        // T = 2 is the shortest training prefix; Caser's height-3 conv must
        // degrade gracefully.
        for kind in BackboneKind::all() {
            let mut store = ParamStore::new();
            let mut rng = Rng::seed(4);
            let enc = build_encoder(kind, &mut store, 8, 20, &mut rng);
            let mut g = Graph::new();
            let bind = store.bind_all(&mut g);
            let x = g.constant(rand_seq(2, 2, 8, 5));
            let out = enc.encode(&mut g, &bind, x);
            assert_eq!(g.value(out).shape(), &[2, 8], "{}", enc.name());
        }
    }

    #[test]
    fn sasrec_last_position_sees_history() {
        // Changing the first item must change SASRec's output (causal mask
        // blocks the future, not the past).
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(6);
        let enc = SasRecEncoder::new(&mut store, 8, 20, 2, 2, &mut rng);
        let x1 = rand_seq(1, 4, 8, 7);
        let mut x2 = x1.clone();
        for d in 0..8 {
            x2.data_mut()[d] += 1.0;
        }
        let run = |x: Tensor| {
            let mut g = Graph::new();
            let bind = store.bind_all(&mut g);
            let xv = g.constant(x);
            let out = enc.encode(&mut g, &bind, xv);
            g.value(out).data().to_vec()
        };
        assert_ne!(run(x1), run(x2));
    }

    #[test]
    fn positional_embedding_rejects_overflow() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(8);
        let pos = PositionalEmbedding::new(&mut store, "p", 4, 8, &mut rng);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let x = g.constant(rand_seq(1, 5, 8, 9));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pos.add_to(&mut g, &bind, x)
        }));
        assert!(result.is_err());
    }
}
