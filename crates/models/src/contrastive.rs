//! CL4SRec-style contrastive self-supervision on the SASRec backbone.
//!
//! Two stochastic *views* of every sequence — produced by seeded crop /
//! reorder / mask operators — are encoded by the shared backbone and pulled
//! together with an InfoNCE loss over in-batch negatives, added to the
//! usual next-item cross-entropy with weight `cl_weight` (the CLI's
//! `--cl-weight`).
//!
//! ## The RNG stream contract for views
//!
//! View generation must be deterministic **per (seed, user)**, independent
//! of batch composition, batch order and thread count. The trainer's RNG
//! stream therefore contributes exactly **one** `u64` draw per batch (the
//! *salt*); each example then derives its own private generator from
//! `(salt, user)` via SplitMix-style mixing. Reordering examples within a
//! batch, changing the batch size, or running on a different thread count
//! cannot change any view — the properties `prop_contrastive.rs` enforces.
//!
//! All view operators are **length-preserving** (batches are
//! length-homogeneous and unpadded, so a view must keep its row's `T`):
//!
//! - **crop** keeps a contiguous window and left-pads with the pad item 0,
//! - **reorder** shuffles a contiguous sub-window in place,
//! - **mask** replaces a fixed fraction of positions with the pad item 0.
//!
//! For sequences of length ≥ 2 the two views are guaranteed to differ: if
//! the independently drawn views collide, one deterministic position flip
//! (pad ↔ original item) is applied to the second view.

use ssdrec_data::Batch;
use ssdrec_tensor::{Binding, Graph, Rng, Var};

use crate::encoder::BackboneKind;
use crate::model::{RecModel, SeqRec};

/// Default weight of the contrastive term (`--cl-weight`).
pub const DEFAULT_CL_WEIGHT: f32 = 0.1;
/// Default InfoNCE temperature (`--cl-tau`).
pub const DEFAULT_CL_TAU: f32 = 0.5;
/// Default augmentation strength (`--aug-rate`): the fraction of a
/// sequence a view operator touches.
pub const DEFAULT_AUG_RATE: f32 = 0.4;

/// Derive the private view generator for one `(salt, user)` pair. This is
/// the *whole* coupling between the trainer's RNG stream and a view: the
/// trainer contributes `salt` (one draw per batch), the example contributes
/// its user id, and everything downstream is a pure function of the two.
pub fn view_rng(salt: u64, user: usize) -> Rng {
    Rng::seed(salt ^ (user as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Apply one randomly chosen view operator (crop / reorder / mask) to
/// `seq`, drawing from `rng`. Always returns a vector of `seq.len()` items
/// (see the module docs for why views are length-preserving).
pub fn augment_view(seq: &[usize], rng: &mut Rng, aug_rate: f32) -> Vec<usize> {
    let t = seq.len();
    if t == 0 {
        return Vec::new();
    }
    let rate = aug_rate.clamp(0.0, 1.0);
    match rng.below(3) {
        // Crop: keep a contiguous window of ⌈(1−rate)·T⌉ items, left-pad
        // with the pad item so the final positions (the ones the encoder
        // reads hardest) hold real history.
        0 => {
            let keep = (((1.0 - rate) * t as f32).round() as usize).clamp(1, t);
            let start = rng.below(t - keep + 1);
            let mut v = vec![0usize; t - keep];
            v.extend_from_slice(&seq[start..start + keep]);
            v
        }
        // Reorder: shuffle a contiguous sub-window of ⌈rate·T⌉ items.
        1 => {
            let w = ((rate * t as f32).round() as usize).clamp(1, t);
            let start = rng.below(t - w + 1);
            let mut v = seq.to_vec();
            rng.shuffle(&mut v[start..start + w]);
            v
        }
        // Mask: replace ⌈rate·T⌉ distinct positions with the pad item.
        _ => {
            let n = ((rate * t as f32).round() as usize).clamp(1, t);
            let mut idx: Vec<usize> = (0..t).collect();
            rng.shuffle(&mut idx);
            let mut v = seq.to_vec();
            for &p in &idx[..n] {
                v[p] = 0;
            }
            v
        }
    }
}

/// Generate the two contrastive views of `seq` for `user` under `salt` —
/// deterministic per `(salt, user, seq)`, length-preserving, and guaranteed
/// distinct whenever `seq.len() ≥ 2`.
pub fn augment_views(
    seq: &[usize],
    user: usize,
    salt: u64,
    aug_rate: f32,
) -> (Vec<usize>, Vec<usize>) {
    let mut rng = view_rng(salt, user);
    let v1 = augment_view(seq, &mut rng, aug_rate);
    let mut v2 = augment_view(seq, &mut rng, aug_rate);
    if v1 == v2 && seq.len() >= 2 {
        // Deterministic tie-break: flip one position between pad and the
        // original item. Real item ids are ≥ 1, so the flip always changes
        // the view.
        let p = rng.below(seq.len());
        v2[p] = if v2[p] == 0 { seq[p].max(1) } else { 0 };
    }
    (v1, v2)
}

/// InfoNCE between two view representations `z1, z2` (`B×d`): positives
/// are the diagonal of `z1 z2ᵀ / τ`, negatives the rest of the batch.
/// Built from matmul + log-softmax only, so both kernel backends and the
/// tape-free pooled path run it unchanged.
pub fn info_nce(g: &mut Graph, z1: Var, z2: Var, tau: f32) -> Var {
    let b = g.value(z1).shape()[0];
    let z2t = g.transpose_last(z2);
    let sim = g.matmul(z1, z2t); // B×B
    let sim = g.scale(sim, 1.0 / tau);
    let logp = g.log_softmax_last(sim);
    let diag: Vec<usize> = (0..b).collect();
    let pos = g.pick_per_row(logp, &diag);
    let mean = g.mean_all(pos);
    g.neg(mean)
}

/// The contrastive training scenario: a [`SeqRec`] backbone whose loss is
/// joint next-item cross-entropy + `cl_weight` · InfoNCE between two
/// augmented views. Evaluation and serving are exactly the backbone's — the
/// contrastive head only shapes training.
pub struct ContrastiveSeqRec {
    /// The wrapped backbone recommender (owns every parameter, so
    /// checkpoints are plain [`SeqRec`] checkpoints).
    pub base: SeqRec,
    /// Weight of the InfoNCE term (`--cl-weight`).
    pub cl_weight: f32,
    /// InfoNCE temperature.
    pub cl_tau: f32,
    /// View operator strength.
    pub aug_rate: f32,
}

impl ContrastiveSeqRec {
    /// Build the scenario on a backbone of the given kind (the paper line
    /// uses SASRec).
    pub fn new(
        kind: BackboneKind,
        num_items: usize,
        dim: usize,
        max_len: usize,
        seed: u64,
    ) -> Self {
        ContrastiveSeqRec {
            base: SeqRec::new(kind, num_items, dim, max_len, seed),
            cl_weight: DEFAULT_CL_WEIGHT,
            cl_tau: DEFAULT_CL_TAU,
            aug_rate: DEFAULT_AUG_RATE,
        }
    }

    /// Materialize the two view batches for `batch` under `salt`. The view
    /// batches share users / targets / `seq_len` with the original (views
    /// are length-preserving), only the item rows differ.
    pub fn view_batches(&self, batch: &Batch, salt: u64) -> (Batch, Batch) {
        let mut items1 = Vec::with_capacity(batch.items.len());
        let mut items2 = Vec::with_capacity(batch.items.len());
        for i in 0..batch.len() {
            let (v1, v2) = augment_views(batch.seq(i), batch.users[i], salt, self.aug_rate);
            items1.extend_from_slice(&v1);
            items2.extend_from_slice(&v2);
        }
        let mk = |items: Vec<usize>| Batch {
            users: batch.users.clone(),
            items,
            seq_len: batch.seq_len,
            targets: batch.targets.clone(),
            noise: None,
        };
        (mk(items1), mk(items2))
    }

    /// Encode one view to its `B×d` representation — the backbone's
    /// embedding + encoder, without dropout (the view operators are the
    /// stochasticity here).
    fn encode_view(&self, g: &mut Graph, bind: &Binding, view: &Batch) -> Var {
        let h = self.base.embed_batch(g, bind, view);
        self.base.encoder.encode(g, bind, h)
    }
}

impl RecModel for ContrastiveSeqRec {
    fn store(&self) -> &ssdrec_tensor::ParamStore {
        &self.base.store
    }

    fn store_mut(&mut self) -> &mut ssdrec_tensor::ParamStore {
        &mut self.base.store
    }

    fn loss(&self, g: &mut Graph, bind: &Binding, batch: &Batch, rng: &mut Rng) -> Var {
        let logits = self.base.forward(g, bind, batch, Some(rng));
        let ce = self.base.ce_loss(g, logits, &batch.targets);
        // InfoNCE needs in-batch negatives; a single-example batch (or a
        // disabled head) trains on CE alone.
        if batch.len() < 2 || self.cl_weight <= 0.0 {
            return ce;
        }
        let salt = rng.next_u64();
        let (view1, view2) = self.view_batches(batch, salt);
        let z1 = self.encode_view(g, bind, &view1);
        let z2 = self.encode_view(g, bind, &view2);
        let nce = info_nce(g, z1, z2, self.cl_tau);
        let weighted = g.scale(nce, self.cl_weight);
        g.add(ce, weighted)
    }

    fn eval_scores(&self, g: &mut Graph, bind: &Binding, batch: &Batch) -> Var {
        self.base.eval_scores(g, bind, batch)
    }

    fn model_name(&self) -> String {
        "CL4SRec".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_batch() -> Batch {
        Batch {
            users: vec![0, 1],
            items: vec![1, 2, 3, 4, 5, 6],
            seq_len: 3,
            targets: vec![4, 1],
            noise: None,
        }
    }

    #[test]
    fn views_preserve_length() {
        let seq = vec![3, 1, 4, 1, 5, 9, 2, 6];
        for salt in 0..16u64 {
            let (v1, v2) = augment_views(&seq, 7, salt, 0.4);
            assert_eq!(v1.len(), seq.len());
            assert_eq!(v2.len(), seq.len());
        }
    }

    #[test]
    fn views_are_deterministic() {
        let seq = vec![5, 2, 8, 1, 9];
        assert_eq!(
            augment_views(&seq, 3, 42, 0.4),
            augment_views(&seq, 3, 42, 0.4)
        );
    }

    #[test]
    fn views_differ_for_len_ge_2() {
        for salt in 0..64u64 {
            let seq = vec![2, 2, 2, 2]; // all-identical is the hard case
            let (v1, v2) = augment_views(&seq, 0, salt, 0.4);
            assert_ne!(v1, v2, "salt {salt}");
        }
    }

    #[test]
    fn loss_with_and_without_contrast_differ() {
        let mut m = ContrastiveSeqRec::new(BackboneKind::SasRec, 10, 8, 20, 1);
        let mut rng = Rng::seed(0);
        let mut g = Graph::new();
        let bind = m.base.store.bind_all(&mut g);
        let with = {
            let l = m.loss(&mut g, &bind, &toy_batch(), &mut rng);
            g.value(l).item()
        };
        m.cl_weight = 0.0;
        let mut g2 = Graph::new();
        let bind2 = m.base.store.bind_all(&mut g2);
        let mut rng2 = Rng::seed(0);
        let without = {
            let l = m.loss(&mut g2, &bind2, &toy_batch(), &mut rng2);
            g2.value(l).item()
        };
        assert!(with.is_finite() && without.is_finite());
        assert_ne!(with, without);
    }

    #[test]
    fn single_example_batch_skips_contrast() {
        let m = ContrastiveSeqRec::new(BackboneKind::SasRec, 10, 8, 20, 2);
        let batch = Batch {
            users: vec![0],
            items: vec![1, 2, 3],
            seq_len: 3,
            targets: vec![4],
            noise: None,
        };
        let mut g = Graph::new();
        let bind = m.base.store.bind_all(&mut g);
        let mut rng = Rng::seed(3);
        let loss = m.loss(&mut g, &bind, &batch, &mut rng);
        assert!(g.value(loss).item().is_finite());
    }

    #[test]
    fn eval_matches_backbone() {
        let m = ContrastiveSeqRec::new(BackboneKind::SasRec, 10, 8, 20, 4);
        let mut g = Graph::new();
        let bind = m.base.store.bind_all(&mut g);
        let a = m.eval_scores(&mut g, &bind, &toy_batch());
        let b = m.base.eval_scores(&mut g, &bind, &toy_batch());
        assert_eq!(g.value(a).data(), g.value(b).data());
    }
}
