//! Property-based tests of the contrastive view operators — the RNG stream
//! contract (`views deterministic per (salt, user)`), length preservation at
//! every boundary length, view distinctness, and bit-identical generation
//! across thread counts.

use std::sync::Arc;

use ssdrec_models::{augment_view, augment_views, view_rng, DEFAULT_AUG_RATE};
use ssdrec_testkit::{gens, property};

const MAX_LEN: usize = 50;

property! {
    cases = 64;

    /// Views are a pure function of (salt, user, seq): regenerating with the
    /// same inputs is bit-identical.
    fn views_deterministic_per_salt_user(
        seq in gens::vecs(gens::usizes(1, 40), 0, 24),
        user in gens::usizes(0, 1000),
        salt in gens::u64s(),
    ) {
        assert_eq!(
            augment_views(&seq, user, salt, DEFAULT_AUG_RATE),
            augment_views(&seq, user, salt, DEFAULT_AUG_RATE),
        );
    }

    /// Different users under the same salt draw from decoupled private
    /// streams — the single per-batch salt draw cannot alias two users of
    /// the same batch onto one view sequence's randomness.
    fn distinct_users_get_distinct_streams(
        salt in gens::u64s(),
        user in gens::usizes(0, 500),
    ) {
        let mut a = view_rng(salt, user);
        let mut b = view_rng(salt, user + 1);
        // Identical 4-draw prefixes would mean the user mixing collapsed.
        let pa: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let pb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(pa, pb);
    }

    /// Every operator is length-preserving for arbitrary lengths and rates.
    fn views_preserve_length(
        seq in gens::vecs(gens::usizes(1, 40), 0, 24),
        salt in gens::u64s(),
        rate in gens::f32s(0.0, 1.0),
    ) {
        let mut rng = view_rng(salt, 3);
        assert_eq!(augment_view(&seq, &mut rng, rate).len(), seq.len());
    }

    /// Boundary lengths {1, 2, MAX_LEN}: length-preserving, and the two
    /// views differ whenever the sequence has at least two positions.
    fn boundary_lengths(
        salt in gens::u64s(),
        user in gens::usizes(0, 100),
        item in gens::usizes(1, 40),
    ) {
        for t in [1usize, 2, MAX_LEN] {
            let seq = vec![item; t];
            let (v1, v2) = augment_views(&seq, user, salt, DEFAULT_AUG_RATE);
            assert_eq!(v1.len(), t);
            assert_eq!(v2.len(), t);
            if t >= 2 {
                assert_ne!(v1, v2, "views must differ at length {t}");
            }
        }
    }

    /// Views never invent items: every view position holds the pad item or
    /// an item that appears in the original sequence.
    fn views_draw_from_the_sequence(
        seq in gens::vecs(gens::usizes(1, 40), 1, 24),
        user in gens::usizes(0, 100),
        salt in gens::u64s(),
    ) {
        let (v1, v2) = augment_views(&seq, user, salt, DEFAULT_AUG_RATE);
        for v in [&v1, &v2] {
            for &it in v {
                assert!(it == 0 || seq.contains(&it), "item {it} not in source");
            }
        }
    }
}

/// View generation is bit-identical no matter how a corpus is sharded over
/// threads: 1, 2 and 7 workers produce exactly the serial result. This is
/// the property that lets the trainer parallelise batch preparation without
/// perturbing the RNG stream contract.
#[test]
fn views_bit_identical_across_thread_counts() {
    let salt = 0x5eed_5a17u64;
    // A corpus of 40 users with varied lengths (1..=12) and contents.
    let corpus: Arc<Vec<(usize, Vec<usize>)>> = Arc::new(
        (0..40)
            .map(|u| {
                let mut r = view_rng(u as u64, u);
                let t = 1 + r.below(12);
                (u, (0..t).map(|_| 1 + r.below(30)).collect())
            })
            .collect(),
    );
    let serial: Vec<(Vec<usize>, Vec<usize>)> = corpus
        .iter()
        .map(|(u, s)| augment_views(s, *u, salt, DEFAULT_AUG_RATE))
        .collect();
    for workers in [1usize, 2, 7] {
        let mut out: Vec<Option<(Vec<usize>, Vec<usize>)>> = vec![None; corpus.len()];
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let corpus = Arc::clone(&corpus);
                std::thread::spawn(move || {
                    corpus
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % workers == w)
                        .map(|(i, (u, s))| (i, augment_views(s, *u, salt, DEFAULT_AUG_RATE)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().unwrap() {
                out[i] = Some(v);
            }
        }
        let joined: Vec<_> = out.into_iter().map(Option::unwrap).collect();
        assert_eq!(joined, serial, "{workers} workers diverged from serial");
    }
}
