//! Finite-difference gradient verification of the Caser convolutional
//! encoder (horizontal conv heights {2,3} + vertical component), via the
//! testkit checker bridged through `fd_check_all_params`.

use ssdrec_models::backbones::CaserEncoder;
use ssdrec_models::SeqEncoder;
use ssdrec_tensor::{fd_check_all_params, with_each_backend, Binding, ParamStore, Rng, Tensor};

#[test]
fn caser_conv_gradients() {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed(31);
    let caser = CaserEncoder::new(&mut store, 3, 2, &mut rng);
    let n = 2 * 4 * 3;
    let mut xr = Rng::seed(32);
    let x0 = Tensor::new((0..n).map(|_| xr.uniform(-1.0, 1.0)).collect(), &[2, 4, 3]);
    let x = store.add("input", x0);
    let w0 = {
        let mut wr = Rng::seed(33);
        Tensor::new((0..2 * 3).map(|_| wr.uniform(-1.0, 1.0)).collect(), &[2, 3])
    };
    // ReLU + max-over-time kinks: use a small step so central differences
    // stay on one side of each kink (near-ties between pooled windows flip
    // the argmax under larger steps). Checked under both kernel backends so
    // the fused conv/ReLU backward is verified against finite differences
    // on each, not just against the other backend.
    with_each_backend(|_| {
        fd_check_all_params(&mut store, 5e-4, 1e-3, |g, bind: &Binding| {
            let xv = bind.var(x);
            let h = caser.encode(g, bind, xv);
            let w = g.constant(w0.clone());
            let t = g.tanh(h);
            let p = g.mul(t, w);
            g.sum_all(p)
        });
    });
}
