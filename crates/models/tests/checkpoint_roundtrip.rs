//! Property test: an SSTC training checkpoint round-trips byte-identically
//! — save → load → apply to a *fresh* model → save again produces the same
//! bytes — for every backbone, including the Adam moment tensors populated
//! by real optimisation steps.

use ssdrec_data::{prepare, Split, SyntheticConfig};
use ssdrec_models::checkpoint::{load_train_state, save_train_state, TrainState};
use ssdrec_models::{train_with_checkpoints, BackboneKind, CheckpointConfig, SeqRec, TrainConfig};
use ssdrec_testkit::{gens, property};

const KINDS: [BackboneKind; 6] = [
    BackboneKind::Gru4Rec,
    BackboneKind::Narm,
    BackboneKind::Stamp,
    BackboneKind::Caser,
    BackboneKind::SasRec,
    BackboneKind::Bert4Rec,
];

fn tiny_split() -> (usize, Split) {
    let ds = SyntheticConfig::beauty()
        .scaled(0.05)
        .with_seed(3)
        .generate();
    let (filtered, split) = prepare(&ds, 20, 2);
    (filtered.num_items, split)
}

/// Train one epoch with checkpointing so the state file carries real Adam
/// moments and a real RNG position, then assert save→load→save identity.
fn assert_roundtrip(kind: BackboneKind, seed: u64) {
    let dir = std::env::temp_dir().join(format!("ssdrec_ckpt_rt_{kind:?}_{seed}"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("state.sstc");
    let _ = std::fs::remove_file(&path);

    let (num_items, split) = tiny_split();
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 16,
        seed,
        ..TrainConfig::default()
    };
    let mut model = SeqRec::new(kind, num_items, 8, 20, seed);
    let ckpt = CheckpointConfig::new(&path);
    train_with_checkpoints(&mut model, &split, &cfg, Some(&ckpt)).unwrap();

    let bytes1 = std::fs::read(&path).unwrap();
    let st = load_train_state(&path).unwrap();

    // Moments must be non-trivial or the property is vacuous.
    assert!(
        st.params
            .iter()
            .any(|(_, _, m, _)| m.data().iter().any(|&x| x != 0.0)),
        "{kind:?}: Adam first moments all zero after training"
    );

    // Apply to a model built from a *different* init seed: every value must
    // come from the checkpoint, not survive from initialisation.
    let mut fresh = SeqRec::new(kind, num_items, 8, 20, seed.wrapping_add(999));
    st.apply_to(&mut fresh).unwrap();
    let st2 = TrainState {
        params: TrainState::capture_params(&fresh),
        model_state: vec![],
        ..st
    };
    let path2 = dir.join("state2.sstc");
    save_train_state(&st2, &path2).unwrap();
    let bytes2 = std::fs::read(&path2).unwrap();
    assert_eq!(
        bytes1, bytes2,
        "{kind:?}: SSTC bytes changed across save→load→save"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

property! {
    cases = 8;
    fn sstc_roundtrips_byte_identically(
        kind_i in gens::usizes(0, 6),
        seed in gens::usizes(1, 64)
    ) {
        assert_roundtrip(KINDS[kind_i], seed as u64);
    }
}

/// Every backbone at least once (the property's random draw may not cover
/// all six in 8 cases).
#[test]
fn sstc_roundtrips_for_every_backbone() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        assert_roundtrip(kind, 40 + i as u64);
    }
}
