//! Finite-difference gradient verification of the contrastive head: the
//! InfoNCE loss in isolation, and the full joint CE + InfoNCE training loss
//! of [`ContrastiveSeqRec`] — both run under each kernel backend, so the
//! matmul / log-softmax backward paths the loss is built from are verified
//! against finite differences on `reference` and `blocked` alike.

use ssdrec_data::Batch;
use ssdrec_models::{info_nce, BackboneKind, ContrastiveSeqRec, RecModel};
use ssdrec_tensor::{fd_check_all_params, with_each_backend, Binding, ParamStore, Rng, Tensor};

fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = Rng::seed(seed);
    let n: usize = shape.iter().product();
    Tensor::new((0..n).map(|_| rng.uniform(-1.0, 1.0)).collect(), shape)
}

#[test]
fn info_nce_gradients() {
    // Both view representations registered as store parameters, so the
    // check covers d/dz1 (the picked-row side) and d/dz2 (the transposed
    // negatives side) of the similarity matrix.
    let mut store = ParamStore::new();
    let z1 = store.add("z1", rand_tensor(&[4, 3], 1));
    let z2 = store.add("z2", rand_tensor(&[4, 3], 2));
    with_each_backend(|_| {
        fd_check_all_params(&mut store, 1e-2, 1e-3, |g, bind: &Binding| {
            let a = bind.var(z1);
            let b = bind.var(z2);
            info_nce(g, a, b, 0.5)
        });
    });
}

#[test]
fn contrastive_joint_loss_gradients() {
    // The full training loss — CE on the dropout forward plus weighted
    // InfoNCE between two seeded views — through a real (tiny) SASRec
    // backbone. The internal RNG is reseeded on every call, so the dropout
    // masks and the view salt are identical across FD perturbations. The
    // views left-pad with item 0, which pushes some FFN pre-activations
    // near the ReLU kink for unlucky inits: the seed and the small step
    // are chosen so no central difference straddles a kink (verified
    // stable across eps ∈ [5e-4, 2e-3]).
    let mut model = ContrastiveSeqRec::new(BackboneKind::SasRec, 8, 4, 6, 13);
    model.cl_weight = 0.5;
    let batch = Batch {
        users: vec![0, 1, 2],
        items: vec![1, 2, 3, 4, 5, 6, 7, 8, 1, 3, 5, 7],
        seq_len: 4,
        targets: vec![5, 2, 8],
        noise: None,
    };
    // `loss` reads parameters only through the graph binding, so the store
    // can be moved out of the model for the duration of the check.
    let mut store = std::mem::replace(&mut model.base.store, ParamStore::new());
    with_each_backend(|_| {
        fd_check_all_params(&mut store, 1e-3, 2e-3, |g, bind: &Binding| {
            let mut rng = Rng::seed(9);
            model.loss(g, bind, &batch, &mut rng)
        });
    });
    model.base.store = store;
}
