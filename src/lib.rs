//! # ssdrec
//!
//! Facade crate for the SSDRec reproduction workspace (*SSDRec:
//! Self-Augmented Sequence Denoising for Sequential Recommendation*,
//! ICDE 2024). Re-exports every sub-crate under one roof and hosts the
//! runnable examples and cross-crate integration tests.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `ssdrec-tensor` | tensors, autograd, NN layers, optimizers |
//! | [`data`] | `ssdrec-data` | synthetic datasets, preprocessing, batching |
//! | [`graph`] | `ssdrec-graph` | the multi-relation graph `G` (paper §III-A) |
//! | [`models`] | `ssdrec-models` | six backbone recommenders + shared trainer |
//! | [`denoise`] | `ssdrec-denoise` | FMLP-Rec, DSAN, HSD, STEAM, DCRec |
//! | [`core`] | `ssdrec-core` | the SSDRec three-stage framework |
//! | [`metrics`] | `ssdrec-metrics` | HR/NDCG/MRR, t-tests, OUP ratios |
//! | [`runtime`] | `ssdrec-runtime` | thread pool + deterministic parallel kernels |
//! | [`ann`] | `ssdrec-ann` | deterministic HNSW candidate retrieval |
//! | [`serve`] | `ssdrec-serve` | the online inference HTTP server |
//! | [`stream`] | `ssdrec-stream` | interaction log, versioned checkpoints, incremental retrain |
//! | [`faults`] | `ssdrec-faults` | deterministic fault-injection sites for chaos testing |
//!
//! ## Quickstart
//!
//! ```no_run
//! use ssdrec::core::{SsdRec, SsdRecConfig};
//! use ssdrec::data::{prepare, SyntheticConfig};
//! use ssdrec::graph::{build_graph, GraphConfig};
//! use ssdrec::models::{train, TrainConfig};
//!
//! let raw = SyntheticConfig::beauty().generate();
//! let (dataset, split) = prepare(&raw, 50, 3);
//! let graph = build_graph(&dataset, &GraphConfig::default());
//! let mut model = SsdRec::new(&graph, SsdRecConfig::default());
//! let report = train(&mut model, &split, &TrainConfig::default());
//! println!("test HR@20 = {:.4}", report.test.hr20);
//! ```

pub use ssdrec_ann as ann;
pub use ssdrec_core as core;
pub use ssdrec_data as data;
pub use ssdrec_denoise as denoise;
pub use ssdrec_faults as faults;
pub use ssdrec_graph as graph;
pub use ssdrec_metrics as metrics;
pub use ssdrec_models as models;
pub use ssdrec_runtime as runtime;
pub use ssdrec_serve as serve;
pub use ssdrec_stream as stream;
pub use ssdrec_tensor as tensor;
