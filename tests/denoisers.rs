//! Integration tests for the five denoising baselines: each must train
//! through the shared trainer, emit valid keep decisions, and honour its
//! implicit/explicit nature.

use ssdrec::data::{inject_unobserved, prepare, SyntheticConfig};
use ssdrec::denoise::{DcRec, Denoiser, Dsan, FmlpRec, Hsd, Steam};
use ssdrec::metrics::OupAccumulator;
use ssdrec::models::{train, RecModel, TrainConfig};

fn tiny_split() -> (ssdrec::data::Dataset, ssdrec::data::Split) {
    let raw = SyntheticConfig::sports()
        .scaled(0.12)
        .with_seed(5)
        .generate();
    prepare(&raw, 50, 2)
}

fn tc() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch_size: 32,
        ..TrainConfig::default()
    }
}

#[test]
fn all_denoisers_train_without_divergence() {
    let (ds, split) = tiny_split();
    let freq = ds.item_frequencies();

    let mut dsan = Dsan::new(ds.num_items, 8, 0);
    assert!(train(&mut dsan, &split, &tc()).final_loss.is_finite());

    let mut fmlp = FmlpRec::new(ds.num_items, 8, 50, 1, 0);
    assert!(train(&mut fmlp, &split, &tc()).final_loss.is_finite());

    let mut hsd = Hsd::new(ds.num_users, ds.num_items, 8, 50, 0);
    assert!(train(&mut hsd, &split, &tc()).final_loss.is_finite());

    let mut dcrec = DcRec::new(ds.num_items, 8, 50, &freq, 0);
    assert!(train(&mut dcrec, &split, &tc()).final_loss.is_finite());

    let mut steam = Steam::new(ds.num_items, 8, 50, 0);
    assert!(train(&mut steam, &split, &tc()).final_loss.is_finite());
}

#[test]
fn implicit_methods_never_drop_items() {
    let (ds, _split) = tiny_split();
    let freq = ds.item_frequencies();
    let fmlp = FmlpRec::new(ds.num_items, 8, 50, 1, 0);
    let dcrec = DcRec::new(ds.num_items, 8, 50, &freq, 0);
    let seq: Vec<usize> = (1..=6).map(|i| (i % ds.num_items) + 1).collect();
    assert!(fmlp.keep_decisions(&seq, 0).iter().all(|&k| k));
    assert!(dcrec.keep_decisions(&seq, 0).iter().all(|&k| k));
}

#[test]
fn keep_scores_align_with_decisions_length() {
    let (ds, _split) = tiny_split();
    let hsd = Hsd::new(ds.num_users, ds.num_items, 8, 50, 1);
    let steam = Steam::new(ds.num_items, 8, 50, 1);
    let dsan = Dsan::new(ds.num_items, 8, 1);
    let seq: Vec<usize> = (1..=7).map(|i| (i % ds.num_items) + 1).collect();
    for (name, scores, decisions) in [
        ("hsd", hsd.keep_scores(&seq, 0), hsd.keep_decisions(&seq, 0)),
        (
            "steam",
            steam.keep_scores(&seq, 0),
            steam.keep_decisions(&seq, 0),
        ),
        (
            "dsan",
            dsan.keep_scores(&seq, 0),
            dsan.keep_decisions(&seq, 0),
        ),
    ] {
        assert_eq!(scores.len(), seq.len(), "{name} scores");
        assert_eq!(decisions.len(), seq.len(), "{name} decisions");
        assert!(
            scores.iter().all(|s| s.is_finite()),
            "{name} non-finite score"
        );
    }
}

#[test]
fn oup_measurement_pipeline_runs() {
    // The full Fig. 1 wiring: inject noise → train → measure OUP.
    let raw = SyntheticConfig::beauty()
        .scaled(0.12)
        .with_noise_ratio(0.0)
        .with_seed(9)
        .generate();
    let noisy = inject_unobserved(&raw, 40, 2, 9);
    let (ds, split) = prepare(&noisy, 50, 2);
    let mut hsd = Hsd::new(ds.num_users, ds.num_items, 8, 50, 2);
    train(&mut hsd, &split, &tc());

    let mut acc = OupAccumulator::new();
    for ex in &split.test {
        let Some(noise) = &ex.noise else { continue };
        if ex.seq.is_empty() {
            continue;
        }
        acc.push(noise, &hsd.keep_decisions(&ex.seq, ex.user));
    }
    assert!(acc.total() > 0, "no labelled positions measured");
    assert!((0.0..=1.0).contains(&acc.under_denoising_ratio()));
    assert!((0.0..=1.0).contains(&acc.over_denoising_ratio()));
}

#[test]
fn denoiser_eval_scores_cover_catalogue() {
    let (ds, split) = tiny_split();
    let batches = ssdrec::data::make_batches(&split.test, 16, 0);
    let hsd = Hsd::new(ds.num_users, ds.num_items, 8, 50, 3);
    let mut g = ssdrec::tensor::Graph::new();
    let bind = hsd.store.bind_all(&mut g);
    let scores = hsd.eval_scores(&mut g, &bind, &batches[0]);
    assert_eq!(g.value(scores).shape()[1], ds.num_items + 1);
}
