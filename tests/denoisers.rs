//! Integration tests for the denoising baselines: each must train through
//! the shared trainer, emit valid keep decisions, and honour its
//! implicit/explicit nature. The weak-supervision test at the bottom pins
//! how much of the generator's injected noise MGSD-WSS must recover.

use ssdrec::data::{inject_unobserved, prepare, SyntheticConfig};
use ssdrec::denoise::{DcRec, Denoiser, Dsan, FmlpRec, Hsd, Mgsd, Steam};
use ssdrec::metrics::OupAccumulator;
use ssdrec::models::{train, BackboneKind, ContrastiveSeqRec, RecModel, TrainConfig};

fn tiny_split() -> (ssdrec::data::Dataset, ssdrec::data::Split) {
    let raw = SyntheticConfig::sports()
        .scaled(0.12)
        .with_seed(5)
        .generate();
    prepare(&raw, 50, 2)
}

fn tc() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch_size: 32,
        ..TrainConfig::default()
    }
}

#[test]
fn all_denoisers_train_without_divergence() {
    let (ds, split) = tiny_split();
    let freq = ds.item_frequencies();

    let mut dsan = Dsan::new(ds.num_items, 8, 0);
    assert!(train(&mut dsan, &split, &tc()).final_loss.is_finite());

    let mut fmlp = FmlpRec::new(ds.num_items, 8, 50, 1, 0);
    assert!(train(&mut fmlp, &split, &tc()).final_loss.is_finite());

    let mut hsd = Hsd::new(ds.num_users, ds.num_items, 8, 50, 0);
    assert!(train(&mut hsd, &split, &tc()).final_loss.is_finite());

    let mut dcrec = DcRec::new(ds.num_items, 8, 50, &freq, 0);
    assert!(train(&mut dcrec, &split, &tc()).final_loss.is_finite());

    let mut steam = Steam::new(ds.num_items, 8, 50, 0);
    assert!(train(&mut steam, &split, &tc()).final_loss.is_finite());
}

#[test]
fn implicit_methods_never_drop_items() {
    let (ds, _split) = tiny_split();
    let freq = ds.item_frequencies();
    let fmlp = FmlpRec::new(ds.num_items, 8, 50, 1, 0);
    let dcrec = DcRec::new(ds.num_items, 8, 50, &freq, 0);
    let seq: Vec<usize> = (1..=6).map(|i| (i % ds.num_items) + 1).collect();
    assert!(fmlp.keep_decisions(&seq, 0).iter().all(|&k| k));
    assert!(dcrec.keep_decisions(&seq, 0).iter().all(|&k| k));
}

#[test]
fn keep_scores_align_with_decisions_length() {
    let (ds, _split) = tiny_split();
    let hsd = Hsd::new(ds.num_users, ds.num_items, 8, 50, 1);
    let steam = Steam::new(ds.num_items, 8, 50, 1);
    let dsan = Dsan::new(ds.num_items, 8, 1);
    let seq: Vec<usize> = (1..=7).map(|i| (i % ds.num_items) + 1).collect();
    for (name, scores, decisions) in [
        ("hsd", hsd.keep_scores(&seq, 0), hsd.keep_decisions(&seq, 0)),
        (
            "steam",
            steam.keep_scores(&seq, 0),
            steam.keep_decisions(&seq, 0),
        ),
        (
            "dsan",
            dsan.keep_scores(&seq, 0),
            dsan.keep_decisions(&seq, 0),
        ),
    ] {
        assert_eq!(scores.len(), seq.len(), "{name} scores");
        assert_eq!(decisions.len(), seq.len(), "{name} decisions");
        assert!(
            scores.iter().all(|s| s.is_finite()),
            "{name} non-finite score"
        );
    }
}

#[test]
fn oup_measurement_pipeline_runs() {
    // The full Fig. 1 wiring: inject noise → train → measure OUP.
    let raw = SyntheticConfig::beauty()
        .scaled(0.12)
        .with_noise_ratio(0.0)
        .with_seed(9)
        .generate();
    let noisy = inject_unobserved(&raw, 40, 2, 9);
    let (ds, split) = prepare(&noisy, 50, 2);
    let mut hsd = Hsd::new(ds.num_users, ds.num_items, 8, 50, 2);
    train(&mut hsd, &split, &tc());

    let mut acc = OupAccumulator::new();
    for ex in &split.test {
        let Some(noise) = &ex.noise else { continue };
        if ex.seq.is_empty() {
            continue;
        }
        acc.push(noise, &hsd.keep_decisions(&ex.seq, ex.user));
    }
    assert!(acc.total() > 0, "no labelled positions measured");
    assert!((0.0..=1.0).contains(&acc.under_denoising_ratio()));
    assert!((0.0..=1.0).contains(&acc.over_denoising_ratio()));
}

#[test]
fn new_methods_train_without_divergence() {
    let (ds, split) = tiny_split();

    let mut cl = ContrastiveSeqRec::new(BackboneKind::SasRec, ds.num_items, 8, 50, 0);
    assert!(train(&mut cl, &split, &tc()).final_loss.is_finite());

    let mut mgsd = Mgsd::new(ds.num_users, ds.num_items, 8, 50, 0);
    assert!(train(&mut mgsd, &split, &tc()).final_loss.is_finite());
}

/// MGSD-WSS's weak supervision must actually *recover* the generator's
/// injected noise, not merely produce well-formed decisions. Two claims are
/// pinned on the noise-labelled profile:
///
/// 1. **Scores order noise below clean** — at the noise-budget operating
///    point (per sequence, flag the `k` lowest keep scores where `k` is the
///    true injected count, so precision = recall by construction) the model
///    must beat the noise base rate by a clear margin. Measured: 0.343
///    against a 0.174 base rate (~2× better than guessing); pinned
///    conservatively at 0.25 so float drift across platforms cannot flip
///    the test while a gate that ignores its labels still fails loudly.
/// 2. **The hard relative-keep rule stays conservative** — like HSD in the
///    Fig. 1 table, the workspace's relative rule drops (almost) nothing at
///    this scale, so over-denoising must stay ≈ 0. This is the OUP row
///    pinned in EXPERIMENTS.md.
#[test]
fn mgsd_weak_supervision_recovers_injected_noise() {
    let raw = SyntheticConfig::beauty()
        .scaled(0.12)
        .with_noise_ratio(0.0)
        .with_seed(9)
        .generate();
    let noisy = inject_unobserved(&raw, 40, 2, 9);
    let (ds, split) = prepare(&noisy, 50, 2);
    let mut mgsd = Mgsd::new(ds.num_users, ds.num_items, 8, 50, 2);
    mgsd.ws_weight = 4.0;
    let tc = TrainConfig {
        epochs: 8,
        batch_size: 32,
        ..TrainConfig::default()
    };
    train(&mut mgsd, &split, &tc);

    let (mut tp, mut flagged) = (0usize, 0usize);
    let mut labelled = 0usize;
    let mut noisy_positions = 0usize;
    let mut acc = OupAccumulator::new();
    for ex in &split.test {
        let Some(noise) = &ex.noise else { continue };
        if ex.seq.is_empty() {
            continue;
        }
        let scores = mgsd.keep_scores(&ex.seq, ex.user);
        acc.push(noise, &mgsd.keep_decisions(&ex.seq, ex.user));
        labelled += noise.len();
        let k = noise.iter().filter(|&&n| n).count();
        noisy_positions += k;
        if k == 0 {
            continue;
        }
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap());
        flagged += k;
        tp += idx[..k].iter().filter(|&&i| noise[i]).count();
    }
    assert!(
        labelled > 0 && noisy_positions > 0,
        "no labelled noise measured"
    );
    let precision = tp as f64 / flagged as f64; // = recall at this budget
    let base_rate = noisy_positions as f64 / labelled as f64;
    println!(
        "mgsd noise recovery: precision@budget={precision:.4} \
         base_rate={base_rate:.4} under={:.4} over={:.4}",
        acc.under_denoising_ratio(),
        acc.over_denoising_ratio()
    );
    assert!(
        precision >= 0.25,
        "precision@budget {precision:.4} below pin 0.25"
    );
    assert!(
        precision >= 1.3 * base_rate,
        "precision@budget {precision:.4} not clearly above base rate {base_rate:.4}"
    );
    assert!(
        acc.over_denoising_ratio() <= 0.05,
        "relative-keep rule over-denoises: {:.4}",
        acc.over_denoising_ratio()
    );
}

#[test]
fn denoiser_eval_scores_cover_catalogue() {
    let (ds, split) = tiny_split();
    let batches = ssdrec::data::make_batches(&split.test, 16, 0);
    let hsd = Hsd::new(ds.num_users, ds.num_items, 8, 50, 3);
    let mut g = ssdrec::tensor::Graph::new();
    let bind = hsd.store.bind_all(&mut g);
    let scores = hsd.eval_scores(&mut g, &bind, &batches[0]);
    assert_eq!(g.value(scores).shape()[1], ds.num_items + 1);
}
