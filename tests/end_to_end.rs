//! End-to-end integration: data generation → preprocessing → graph →
//! SSDRec training → evaluation, exercising the whole workspace through the
//! public facade.

use ssdrec::core::{SsdRec, SsdRecConfig};
use ssdrec::data::{prepare, SyntheticConfig};
use ssdrec::graph::{build_graph, GraphConfig};
use ssdrec::models::{evaluate, train, BackboneKind, RecModel, TrainConfig};

fn tiny_setup() -> (
    ssdrec::data::Dataset,
    ssdrec::data::Split,
    ssdrec::graph::MultiRelationGraph,
) {
    let raw = SyntheticConfig::beauty()
        .scaled(0.12)
        .with_seed(11)
        .generate();
    let (dataset, split) = prepare(&raw, 50, 2);
    let graph = build_graph(&dataset, &GraphConfig::default());
    (dataset, split, graph)
}

#[test]
fn ssdrec_trains_and_beats_random_ranking() {
    let (dataset, split, graph) = tiny_setup();
    let cfg = SsdRecConfig {
        dim: 8,
        max_len: 50,
        ..SsdRecConfig::default()
    };
    let mut model = SsdRec::new(&graph, cfg);
    let tc = TrainConfig {
        epochs: 4,
        batch_size: 32,
        patience: 10,
        ..TrainConfig::default()
    };
    let report = train(&mut model, &split, &tc);
    assert!(report.final_loss.is_finite());
    let random_hr20 = 20.0 / dataset.num_items as f64;
    assert!(
        report.test.hr20 > random_hr20,
        "HR@20 {} vs random {}",
        report.test.hr20,
        random_hr20
    );
}

#[test]
fn trained_model_is_reusable_for_evaluation() {
    let (_dataset, split, graph) = tiny_setup();
    let cfg = SsdRecConfig {
        dim: 8,
        max_len: 50,
        ..SsdRecConfig::default()
    };
    let mut model = SsdRec::new(&graph, cfg);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 32,
        ..TrainConfig::default()
    };
    let report = train(&mut model, &split, &tc);
    // Re-evaluating the restored model reproduces the reported test metrics.
    let acc = evaluate(&model, &split.test, 32);
    assert!((acc.hr(20) - report.test.hr20).abs() < 1e-12);
    assert!((acc.mrr(20) - report.test.mrr20).abs() < 1e-12);
}

#[test]
fn ablation_variants_all_run_end_to_end() {
    let (_dataset, split, graph) = tiny_setup();
    let tc = TrainConfig {
        epochs: 1,
        batch_size: 32,
        ..TrainConfig::default()
    };
    for (s1, s2, s3) in [
        (false, true, true),
        (true, false, true),
        (true, true, false),
    ] {
        let cfg = SsdRecConfig {
            dim: 8,
            max_len: 50,
            stage1: s1,
            stage2: s2,
            stage3: s3,
            ..SsdRecConfig::default()
        };
        let mut model = SsdRec::new(&graph, cfg);
        let report = train(&mut model, &split, &tc);
        assert!(
            report.final_loss.is_finite(),
            "variant ({s1},{s2},{s3}) diverged"
        );
        assert!(
            !model.store.any_non_finite(),
            "variant ({s1},{s2},{s3}) has NaN params"
        );
    }
}

#[test]
fn keep_decisions_and_explain_work_after_training() {
    let (_dataset, split, graph) = tiny_setup();
    let cfg = SsdRecConfig {
        dim: 8,
        max_len: 50,
        ..SsdRecConfig::default()
    };
    let mut model = SsdRec::new(&graph, cfg);
    let tc = TrainConfig {
        epochs: 1,
        batch_size: 32,
        ..TrainConfig::default()
    };
    train(&mut model, &split, &tc);

    let ex = split
        .test
        .iter()
        .find(|e| e.seq.len() >= 4)
        .expect("a long-enough test example");
    let kept = model.keep_decisions_for(&ex.seq, ex.user);
    assert_eq!(kept.len(), ex.seq.len());

    let mut rng = ssdrec::tensor::Rng::seed(0);
    let cs = model.explain(&ex.seq, ex.user, ex.target, &mut rng);
    assert_eq!(cs.kept.len(), ex.seq.len());
    assert!(cs.raw_score.is_finite() && cs.denoised_score.is_finite());
}

#[test]
fn backbone_plug_in_compatibility() {
    // Every backbone must run inside SSDRec for at least one step.
    let (_dataset, split, graph) = tiny_setup();
    let tc = TrainConfig {
        epochs: 1,
        batch_size: 32,
        ..TrainConfig::default()
    };
    for kind in BackboneKind::all() {
        let cfg = SsdRecConfig {
            dim: 8,
            max_len: 50,
            backbone: kind,
            ..SsdRecConfig::default()
        };
        let mut model = SsdRec::new(&graph, cfg);
        let report = train(&mut model, &split, &tc);
        assert!(
            report.final_loss.is_finite(),
            "{} inside SSDRec diverged",
            kind.name()
        );
        assert!(model.model_name().starts_with("SSDRec"));
    }
}
