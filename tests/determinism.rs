//! Reproducibility: the entire pipeline — generation, preprocessing, graph,
//! training, evaluation — must be bit-identical under a fixed seed, and must
//! actually vary when the seed changes.

use ssdrec::core::{SsdRec, SsdRecConfig};
use ssdrec::data::{prepare, SyntheticConfig};
use ssdrec::graph::{build_graph, GraphConfig};
use ssdrec::models::{train, TrainConfig};

fn run_pipeline(seed: u64) -> (Vec<usize>, f64, f64) {
    let raw = SyntheticConfig::sports()
        .scaled(0.1)
        .with_seed(seed)
        .generate();
    let (dataset, split) = prepare(&raw, 50, 2);
    let graph = build_graph(&dataset, &GraphConfig::default());
    let cfg = SsdRecConfig {
        dim: 8,
        max_len: 50,
        seed,
        ..SsdRecConfig::default()
    };
    let mut model = SsdRec::new(&graph, cfg);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 32,
        seed,
        ..TrainConfig::default()
    };
    let report = train(&mut model, &split, &tc);
    (
        report.test_ranks.clone(),
        report.test.hr20,
        report.test.mrr20,
    )
}

#[test]
fn identical_seeds_produce_identical_results() {
    let (ranks_a, hr_a, mrr_a) = run_pipeline(11);
    let (ranks_b, hr_b, mrr_b) = run_pipeline(11);
    assert_eq!(
        ranks_a, ranks_b,
        "per-example ranks diverged under the same seed"
    );
    assert_eq!(hr_a, hr_b);
    assert_eq!(mrr_a, mrr_b);
}

#[test]
fn different_seeds_produce_different_results() {
    let (ranks_a, _, _) = run_pipeline(11);
    let (ranks_b, _, _) = run_pipeline(12);
    assert_ne!(
        ranks_a, ranks_b,
        "results identical across seeds — RNG not wired through"
    );
}
