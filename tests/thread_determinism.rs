//! The determinism suite: every parallelized hot path must be
//! **bit-identical** at 1, 2 and 7 threads (7 is deliberately odd and
//! co-prime with every chunk count, so uneven chunk-to-thread assignments
//! are exercised). This is the enforcement arm of the determinism contract
//! in `ssdrec_runtime` — parallelism may only trade wall-clock time, never
//! a single bit of output.
//!
//! The matrix also has a **backend** dimension: every thread-count sweep
//! runs once per kernel backend (`reference`, `blocked`), and each backend
//! must be bit-identical across thread counts on its own. On top of that,
//! the v1 kernel-bits contract (`KERNEL_BITS_MAX_ULPS == 0`) says the
//! blocked backend reproduces the reference oracle exactly, so the matrix
//! is also asserted to collapse *across* backends — including checkpoint
//! bytes, which are pinned per backend and equal between them.
//!
//! Each test reconfigures the shared global pool and the process-global
//! backend, so the suite serialises itself behind one mutex and restores a
//! 1-thread pool on the way out.

use std::sync::Mutex;

use ssdrec::core::{SsdRec, SsdRecConfig};
use ssdrec::data::{prepare, SyntheticConfig};
use ssdrec::denoise::Mgsd;
use ssdrec::graph::{build_graph, GraphConfig};
use ssdrec::metrics::{full_rank, par_top_k, rank_rows, top_k};
use ssdrec::models::{
    evaluate, train, BackboneKind, ContrastiveSeqRec, RecModel, SeqRec, TrainConfig,
};
use ssdrec::serve::{Engine, EngineConfig, ServerStats};
use ssdrec::tensor::kernels::{matmul, matmul_backward, scatter_rows};
use ssdrec::tensor::{pool, save_params, with_each_backend, Tensor};

/// Serialises pool reconfiguration across `#[test]` threads.
static POOL_LOCK: Mutex<()> = Mutex::new(());

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

/// Run `f` once per (backend, thread count) cell. Within each backend the
/// outputs must be bit-identical across thread counts; across backends the
/// per-backend references must match too (the v1 kernel-bits contract —
/// `blocked` reproduces `reference` exactly).
fn assert_bits_stable<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let mut cross: Option<T> = None;
    with_each_backend(|kind| {
        let mut reference: Option<T> = None;
        for &t in &THREAD_COUNTS {
            ssdrec::runtime::set_threads(t);
            let got = f();
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(
                    &got,
                    want,
                    "output diverged at {t} threads ({} backend)",
                    kind.name()
                ),
            }
        }
        let got = reference.take().unwrap();
        match &cross {
            None => cross = Some(got),
            Some(want) => assert_eq!(
                &got,
                want,
                "output diverged between backends (at {} backend)",
                kind.name()
            ),
        }
    });
    ssdrec::runtime::set_threads(1);
}

/// A deterministic dense fill that produces "awkward" floats (varied signs
/// and magnitudes, some exact zeros to exercise the gemm skip path).
fn fill(n: usize, salt: u64) -> Vec<f32> {
    let mut state = salt.wrapping_mul(0x9e3779b97f4a7c15).max(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state % 17 == 0 {
                0.0
            } else {
                ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 4.0 - 2.0
            }
        })
        .collect()
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|x| x.to_bits()).collect()
}

#[test]
fn gemm_is_bit_identical_across_thread_counts() {
    // Big enough to clear the parallel threshold in every case below.
    let (m, k, n) = (96, 48, 80);
    let a = Tensor::new(fill(m * k, 1), &[m, k]);
    let b = Tensor::new(fill(k * n, 2), &[k, n]);
    let gout = Tensor::new(fill(m * n, 3), &[m, n]);
    assert_bits_stable(|| {
        // Forward covers the (false, false) variant; the backward pair
        // covers (false, true) and (true, false) over the same shapes.
        let out = matmul(&a, &b);
        let (ga, gb) = matmul_backward(&a, &b, &gout);
        (bits(&out), bits(&ga), bits(&gb))
    });
}

#[test]
fn batched_matmul_is_bit_identical_across_thread_counts() {
    let (bs, m, k, n) = (24, 12, 16, 20);
    let a3 = Tensor::new(fill(bs * m * k, 4), &[bs, m, k]);
    let b3 = Tensor::new(fill(bs * k * n, 5), &[bs, k, n]);
    let b2 = Tensor::new(fill(k * n, 6), &[k, n]);
    let gout = Tensor::new(fill(bs * m * n, 7), &[bs, m, n]);
    assert_bits_stable(|| {
        let out33 = matmul(&a3, &b3);
        let out32 = matmul(&a3, &b2);
        let (ga33, gb33) = matmul_backward(&a3, &b3, &gout);
        // ThreeTwo backward: gb accumulates across batches — the
        // order-sensitive case the sequential batch loop protects.
        let (ga32, gb32) = matmul_backward(&a3, &b2, &gout);
        (
            bits(&out33),
            bits(&out32),
            bits(&ga33),
            bits(&gb33),
            bits(&ga32),
            bits(&gb32),
        )
    });
}

#[test]
fn embedding_backward_is_bit_identical_across_thread_counts() {
    // Repeating indices make the scatter-add order observable: f32 addition
    // is non-associative, so any reordering would flip low bits.
    let (v, d, n) = (160, 32, 900);
    let indices: Vec<usize> = (0..n).map(|i| (i * 37 + i * i * 11) % v).collect();
    let gout = Tensor::new(fill(n * d, 8), &[n, d]);
    assert_bits_stable(|| bits(&scatter_rows(&[v, d], &indices, &gout)));
}

#[test]
fn full_rank_eval_is_bit_identical_across_thread_counts() {
    // Synthetic wide score matrix straight through the metrics helpers…
    let (rows, width) = (70, 512);
    let flat = fill(rows * width, 9);
    let targets: Vec<usize> = (0..rows).map(|r| 1 + (r * 13) % (width - 1)).collect();
    let seq: Vec<usize> = targets
        .iter()
        .enumerate()
        .map(|(r, &t)| full_rank(&flat[r * width..(r + 1) * width], t))
        .collect();
    assert_bits_stable(|| {
        let ranks = rank_rows(&flat, width, &targets);
        assert_eq!(ranks, seq, "parallel ranks must equal the sequential map");
        ranks
    });

    // …and through a real model evaluation end to end.
    let model = SeqRec::new(BackboneKind::SasRec, 40, 8, 12, 11);
    let examples: Vec<ssdrec::data::Example> = (0..12)
        .map(|u| ssdrec::data::Example {
            user: u,
            seq: (1..=8).map(|i| 1 + (u * 7 + i * 3) % 40).collect(),
            target: 1 + (u * 5) % 40,
            noise: None,
        })
        .collect();
    assert_bits_stable(|| {
        let acc = evaluate(&model, &examples, 4);
        let report = acc.report();
        (
            acc.ranks().to_vec(),
            report.hr10.to_bits(),
            report.ndcg10.to_bits(),
        )
    });
}

#[test]
fn top_k_selection_is_exact_at_any_thread_count() {
    // A catalogue above the par_top_k threshold with heavy score ties.
    let scores: Vec<f32> = fill(10_000, 10)
        .into_iter()
        .map(|x| (x * 8.0).round() / 8.0)
        .collect();
    let want = top_k(&scores, 25);
    assert_bits_stable(|| {
        let got = par_top_k(&scores, 25);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.0, w.0);
            assert_eq!(g.1.to_bits(), w.1.to_bits());
        }
        got.iter()
            .map(|&(i, s)| (i, s.to_bits()))
            .collect::<Vec<_>>()
    });
}

/// Train a tiny SSDRec end to end and fingerprint everything observable:
/// the final training-loss bits, HR@10/NDCG@10 bits, and the exact
/// checkpoint bytes written by `save_params`. Two epochs cross the
/// augmentation warm-up, so the full three-stage loss path is in the
/// fingerprint.
fn train_fingerprint(tag: &str) -> (Vec<u32>, u64, u64, Vec<u8>) {
    let raw = SyntheticConfig::sports()
        .scaled(0.03)
        .with_seed(7)
        .generate();
    let (dataset, split) = prepare(&raw, 50, 2);
    let graph = build_graph(&dataset, &GraphConfig::default());
    let cfg = SsdRecConfig {
        dim: 8,
        max_len: 50,
        seed: 7,
        ..SsdRecConfig::default()
    };
    let mut model = SsdRec::new(&graph, cfg);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 32,
        seed: 7,
        ..TrainConfig::default()
    };
    let report = train(&mut model, &split, &tc);
    let loss_bits = vec![report.final_loss.to_bits()];

    let dir = std::path::Path::new("target").join("ssdrec-test");
    std::fs::create_dir_all(&dir).expect("test dir");
    let path = dir.join(format!("pool_identity_{tag}.ssdt"));
    save_params(model.store(), &path).expect("save checkpoint");
    let ckpt = std::fs::read(&path).expect("read checkpoint");
    let _ = std::fs::remove_file(&path);

    (
        loss_bits,
        report.test.hr10.to_bits(),
        report.test.ndcg10.to_bits(),
        ckpt,
    )
}

/// The tentpole contract of the step-scoped arena, extended with the
/// backend dimension: pooled buffers carry stale contents, so a pooled
/// training run must still produce the exact bits — losses, metrics and
/// checkpoint bytes — of a fresh-allocation run, at 1 thread and at 4,
/// under each kernel backend. The checkpoint bytes are additionally pinned
/// *across* backends (the v1 kernel-bits contract).
#[test]
fn pooled_and_fresh_training_are_bit_identical() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let was = pool::is_enabled();
    let mut cross: Option<(Vec<u32>, u64, u64, Vec<u8>)> = None;
    with_each_backend(|kind| {
        let be = kind.name();
        for &t in &[1usize, 4] {
            ssdrec::runtime::set_threads(t);
            pool::set_enabled(true);
            let pooled = train_fingerprint(&format!("pooled_{be}_t{t}"));
            pool::set_enabled(false);
            let fresh = train_fingerprint(&format!("fresh_{be}_t{t}"));
            assert_eq!(
                pooled.0, fresh.0,
                "epoch loss bits diverged between pooled and fresh at {t} threads ({be})"
            );
            assert_eq!(
                (pooled.1, pooled.2),
                (fresh.1, fresh.2),
                "HR@10/NDCG@10 bits diverged between pooled and fresh at {t} threads ({be})"
            );
            assert_eq!(
                pooled.3, fresh.3,
                "checkpoint bytes diverged between pooled and fresh at {t} threads ({be})"
            );
            match &cross {
                None => cross = Some(pooled),
                Some(want) => {
                    assert_eq!(
                        &pooled.0, &want.0,
                        "loss bits diverged across the backend matrix ({be}, {t} threads)"
                    );
                    assert_eq!(
                        (pooled.1, pooled.2),
                        (want.1, want.2),
                        "HR@10/NDCG@10 bits diverged across the backend matrix ({be}, {t} threads)"
                    );
                    assert_eq!(
                        pooled.3, want.3,
                        "checkpoint bytes diverged across the backend matrix ({be}, {t} threads)"
                    );
                }
            }
        }
    });
    pool::set_enabled(was);
    ssdrec::runtime::set_threads(1);
}

/// Train `model` on the tiny sports world and fingerprint everything
/// observable — final-loss bits, HR@10/NDCG@10 bits, checkpoint bytes.
fn model_fingerprint<M: RecModel>(mut model: M, tag: &str) -> (u32, u64, u64, Vec<u8>) {
    let raw = SyntheticConfig::sports()
        .scaled(0.03)
        .with_seed(7)
        .generate();
    let (_dataset, split) = prepare(&raw, 50, 2);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 32,
        seed: 7,
        ..TrainConfig::default()
    };
    let report = train(&mut model, &split, &tc);

    let dir = std::path::Path::new("target").join("ssdrec-test");
    std::fs::create_dir_all(&dir).expect("test dir");
    let path = dir.join(format!("loss_path_identity_{tag}.ssdt"));
    save_params(model.store(), &path).expect("save checkpoint");
    let ckpt = std::fs::read(&path).expect("read checkpoint");
    let _ = std::fs::remove_file(&path);

    (
        report.final_loss.to_bits(),
        report.test.hr10.to_bits(),
        report.test.ndcg10.to_bits(),
        ckpt,
    )
}

/// The two newest loss paths — the contrastive joint CE + InfoNCE loss
/// (whose per-example view RNG must be immune to batch sharding) and the
/// multi-granularity weakly supervised loss — run through the full matrix:
/// backend × {1, 2, 7} threads × pooled-vs-fresh allocation, with the
/// checkpoint bytes additionally pinned across backends.
#[test]
fn new_loss_paths_are_bit_identical_across_matrix() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let was = pool::is_enabled();
    let dims = || {
        let raw = SyntheticConfig::sports()
            .scaled(0.03)
            .with_seed(7)
            .generate();
        let (dataset, _) = prepare(&raw, 50, 2);
        (dataset.num_users, dataset.num_items)
    };
    let (num_users, num_items) = dims();

    for scenario in ["cl", "mgsd"] {
        let run = |tag: &str| -> (u32, u64, u64, Vec<u8>) {
            if scenario == "cl" {
                model_fingerprint(
                    ContrastiveSeqRec::new(BackboneKind::SasRec, num_items, 8, 50, 7),
                    tag,
                )
            } else {
                model_fingerprint(Mgsd::new(num_users, num_items, 8, 50, 7), tag)
            }
        };
        let mut cross: Option<(u32, u64, u64, Vec<u8>)> = None;
        with_each_backend(|kind| {
            let be = kind.name();
            let mut reference: Option<(u32, u64, u64, Vec<u8>)> = None;
            for &t in &THREAD_COUNTS {
                ssdrec::runtime::set_threads(t);
                pool::set_enabled(true);
                let pooled = run(&format!("{scenario}_pooled_{be}_t{t}"));
                pool::set_enabled(false);
                let fresh = run(&format!("{scenario}_fresh_{be}_t{t}"));
                assert_eq!(
                    pooled, fresh,
                    "{scenario}: pooled and fresh runs diverged at {t} threads ({be})"
                );
                match &reference {
                    None => reference = Some(pooled),
                    Some(want) => assert_eq!(
                        &pooled, want,
                        "{scenario}: output diverged at {t} threads ({be})"
                    ),
                }
            }
            let got = reference.take().unwrap();
            match &cross {
                None => cross = Some(got),
                Some(want) => assert_eq!(
                    &got, want,
                    "{scenario}: output diverged between backends (at {be})"
                ),
            }
        });
    }
    pool::set_enabled(was);
    ssdrec::runtime::set_threads(1);
}

/// Resume-equivalence at multiple thread counts: training 4 epochs straight
/// must be bit-identical — loss, metrics and checkpoint bytes — to a
/// 4-epoch run killed after epoch 2 and `--resume`d in a fresh model.
/// `tests/chaos.rs` pins the fault-injection side of this contract; this
/// test pins the *thread* dimension.
#[test]
fn resumed_training_is_bit_identical_across_thread_counts() {
    use ssdrec::models::{train_with_checkpoints, CheckpointConfig};

    let _guard = POOL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let world = || {
        let raw = SyntheticConfig::sports()
            .scaled(0.03)
            .with_seed(7)
            .generate();
        let (dataset, split) = prepare(&raw, 50, 2);
        let graph = build_graph(&dataset, &GraphConfig::default());
        let cfg = SsdRecConfig {
            dim: 8,
            max_len: 50,
            seed: 7,
            ..SsdRecConfig::default()
        };
        let model = SsdRec::new(&graph, cfg);
        (split, model)
    };
    let tc = |epochs: usize| TrainConfig {
        epochs,
        batch_size: 32,
        seed: 7,
        ..TrainConfig::default()
    };
    let fingerprint = |report: &ssdrec::models::TrainReport, model: &SsdRec, tag: &str| {
        let dir = std::path::Path::new("target").join("ssdrec-test");
        std::fs::create_dir_all(&dir).expect("test dir");
        let path = dir.join(format!("resume_eq_{tag}.ssdt"));
        save_params(model.store(), &path).expect("save checkpoint");
        let bytes = std::fs::read(&path).expect("read checkpoint");
        let _ = std::fs::remove_file(&path);
        (
            report.final_loss.to_bits(),
            report.test.hr10.to_bits(),
            report.test.ndcg10.to_bits(),
            bytes,
        )
    };

    for &t in &[1usize, 4] {
        ssdrec::runtime::set_threads(t);

        let state = std::path::Path::new("target")
            .join("ssdrec-test")
            .join(format!("resume_eq_t{t}.sstc"));
        std::fs::create_dir_all(state.parent().unwrap()).expect("test dir");
        let _ = std::fs::remove_file(&state);

        // 4 epochs straight through, checkpointing all the way.
        let (split, mut straight) = world();
        let straight_report = train_with_checkpoints(
            &mut straight,
            &split,
            &tc(4),
            Some(&CheckpointConfig::new(&state)),
        )
        .expect("uninterrupted run");
        let want = fingerprint(&straight_report, &straight, &format!("straight_t{t}"));
        let _ = std::fs::remove_file(&state);

        // 2 epochs, kill; then resume the final 2 in a fresh model. The
        // kill must happen inside a 4-epoch run (not a 2-epoch one): the
        // augmentation schedule depends on the configured total, so only
        // an interrupted 4-epoch run shares the uninterrupted prefix.
        let (split, mut first_half) = world();
        {
            let _armed = ssdrec_testkit::fault::FaultPlan::new()
                .panic("train.epoch", 2)
                .arm();
            let ckpt = CheckpointConfig::new(&state);
            let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                train_with_checkpoints(&mut first_half, &split, &tc(4), Some(&ckpt))
            }));
            assert!(died.is_err(), "the injected kill must abort the run");
        }
        let (split, mut resumed) = world();
        let resumed_report = train_with_checkpoints(
            &mut resumed,
            &split,
            &tc(4),
            Some(&CheckpointConfig {
                path: state.clone(),
                every: 1,
                resume: true,
            }),
        )
        .expect("resumed half");
        let got = fingerprint(&resumed_report, &resumed, &format!("resumed_t{t}"));

        assert_eq!(
            got.0, want.0,
            "loss bits diverged after resume at {t} threads"
        );
        assert_eq!(
            (got.1, got.2),
            (want.1, want.2),
            "HR@10/NDCG@10 bits diverged after resume at {t} threads"
        );
        assert_eq!(
            got.3, want.3,
            "checkpoint bytes diverged after resume at {t} threads"
        );
        let _ = std::fs::remove_file(&state);
    }
    ssdrec::runtime::set_threads(1);
}

#[test]
fn served_request_is_bit_identical_across_thread_counts() {
    assert_bits_stable(|| {
        let model = SeqRec::new(BackboneKind::SasRec, 30, 8, 10, 42);
        let reference = SeqRec::new(BackboneKind::SasRec, 30, 8, 10, 42);
        let engine = Engine::new(
            model.into(),
            EngineConfig {
                max_len: 10,
                ..EngineConfig::default()
            },
            std::sync::Arc::new(ServerStats::new()),
        );
        let seq = vec![3, 9, 4, 1];
        let served = engine.recommend(0, &seq, 8).expect("serve");
        let offline = reference.recommend(0, &seq, 8);
        assert_eq!(served.items.len(), offline.len());
        for (s, o) in served.items.iter().zip(&offline) {
            assert_eq!(s.0, o.0, "served item diverged from offline");
            assert_eq!(s.1.to_bits(), o.1.to_bits(), "served score bits");
        }
        engine.shutdown();
        served
            .items
            .iter()
            .map(|&(i, s)| (i, s.to_bits()))
            .collect::<Vec<_>>()
    });
}

#[test]
fn ann_retrieval_is_bit_identical_across_thread_counts() {
    use ssdrec::ann::{AnnParams, HnswIndex};
    use ssdrec::serve::{RetrievalConfig, RetrievalMode};

    assert_bits_stable(|| {
        let model = SeqRec::new(BackboneKind::SasRec, 60, 8, 10, 42);

        // Index bytes: the batched HNSW build parallelises candidate
        // search across the pool, so the serialized graph itself is part
        // of the determinism contract.
        let mut g = ssdrec::tensor::Graph::inference_with_capacity(4096);
        let bind = model.store.bind_all(&mut g);
        let frozen = model.precompute_frozen(&mut g, &bind);
        let index = HnswIndex::build(
            g.value(frozen.table).data(),
            8,
            model.num_items(),
            AnnParams::default(),
        )
        .expect("index build");
        let index_bytes = index.to_bytes();

        // Served top-K through the two-stage ann path, with a beam narrow
        // enough (ef ≪ catalogue) that the approximate search is real.
        let engine = Engine::try_new(
            model.into(),
            EngineConfig {
                max_len: 10,
                retrieval: RetrievalConfig {
                    mode: RetrievalMode::Ann,
                    ann_m: 8,
                    ef_search: 12,
                },
                ..EngineConfig::default()
            },
            std::sync::Arc::new(ServerStats::new()),
        )
        .expect("engine");
        let served = engine.recommend(0, &[3, 9, 4, 1], 8).expect("serve");
        engine.shutdown();

        let bits: Vec<(usize, u32)> = served
            .items
            .iter()
            .map(|&(i, s)| (i, s.to_bits()))
            .collect();
        (index_bytes, bits)
    });
}
