//! Integration across the data and metrics crates: loading text logs,
//! preparing them, and evaluating with bucketed/beyond-accuracy metrics.

use ssdrec::data::{parse_interactions, prepare, LoadOptions, SyntheticConfig};
use ssdrec::metrics::{LengthBuckets, RecListAccumulator};
use ssdrec::models::{train, BackboneKind, RecModel, SeqRec, TrainConfig};

#[test]
fn text_log_to_trained_model() {
    // Build a small but 5-core-surviving log: 12 users × 8 interactions over
    // 10 items, structured so each item is frequent.
    let mut log = String::new();
    let mut ts = 0;
    for u in 0..12 {
        for i in 0..8 {
            let item = (u + i) % 10 + 1;
            ts += 1;
            log.push_str(&format!("{u},{item},{ts}\n"));
        }
    }
    let ds = parse_interactions(&log, &LoadOptions::csv_triples()).unwrap();
    assert_eq!(ds.num_users, 12);
    let (filtered, split) = prepare(&ds, 50, 2);
    assert!(
        !split.test.is_empty(),
        "log should survive 5-core filtering"
    );

    let mut model = SeqRec::new(BackboneKind::Gru4Rec, filtered.num_items, 8, 50, 0);
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 16,
        ..TrainConfig::default()
    };
    let report = train(&mut model, &split, &cfg);
    assert!(report.final_loss.is_finite());
}

#[test]
fn bucketed_metrics_partition_the_test_set() {
    let raw = SyntheticConfig::beauty()
        .scaled(0.12)
        .with_seed(8)
        .generate();
    let (filtered, split) = prepare(&raw, 50, 2);
    let model = SeqRec::new(BackboneKind::SasRec, filtered.num_items, 8, 50, 1);

    let mut buckets = LengthBuckets::short_medium_long();
    for ex in &split.test {
        let recs = model.recommend(ex.user, &ex.seq, filtered.num_items);
        let rank = recs.iter().position(|&(i, _)| i == ex.target).unwrap() + 1;
        buckets.push(ex.seq.len(), rank);
    }
    let total: usize = (0..buckets.num_buckets()).map(|i| buckets.count(i)).sum();
    assert_eq!(
        total,
        split.test.len(),
        "buckets must partition the test set"
    );
}

#[test]
fn serving_lists_feed_beyond_accuracy_metrics() {
    let raw = SyntheticConfig::sports()
        .scaled(0.1)
        .with_seed(9)
        .generate();
    let (filtered, split) = prepare(&raw, 50, 2);
    let model = SeqRec::new(BackboneKind::Gru4Rec, filtered.num_items, 8, 50, 2);

    let mut acc = RecListAccumulator::new(filtered.num_items);
    for ex in split.test.iter().take(20) {
        let items: Vec<usize> = model
            .recommend(ex.user, &ex.seq, 5)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        acc.push(&items);
    }
    assert!(acc.coverage() > 0.0);
    assert!((0.0..=1.0).contains(&acc.gini()));
    assert_eq!(acc.mean_list_len(), 5.0);
}
