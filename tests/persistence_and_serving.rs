//! Integration tests for the serving path: checkpointing, reloading and
//! top-k recommendation through the public facade.

use ssdrec::core::{SsdRec, SsdRecConfig};
use ssdrec::data::{prepare, SyntheticConfig};
use ssdrec::graph::{build_graph, GraphConfig};
use ssdrec::models::{train, RecModel, TrainConfig};
use ssdrec::tensor::{load_params, save_params};

fn setup() -> (ssdrec::data::Split, ssdrec::graph::MultiRelationGraph) {
    let raw = SyntheticConfig::yelp().scaled(0.1).with_seed(21).generate();
    let (dataset, split) = prepare(&raw, 50, 2);
    let graph = build_graph(&dataset, &GraphConfig::default());
    (split, graph)
}

#[test]
fn checkpoint_roundtrip_preserves_predictions() {
    let (split, graph) = setup();
    let cfg = SsdRecConfig {
        dim: 8,
        max_len: 50,
        ..SsdRecConfig::default()
    };
    let mut model = SsdRec::new(&graph, cfg.clone());
    let tc = TrainConfig {
        epochs: 1,
        batch_size: 32,
        ..TrainConfig::default()
    };
    train(&mut model, &split, &tc);

    let path = std::env::temp_dir().join("ssdrec_it_roundtrip.ssdt");
    save_params(&model.store, &path).unwrap();

    let mut reloaded = SsdRec::new(&graph, cfg);
    load_params(&mut reloaded.store, &path).unwrap();

    let ex = &split.test[0];
    assert_eq!(
        model.recommend(ex.user, &ex.seq, 10),
        reloaded.recommend(ex.user, &ex.seq, 10),
        "reloaded model diverges"
    );
}

#[test]
fn checkpoint_rejects_different_architecture() {
    let (_split, graph) = setup();
    let cfg8 = SsdRecConfig {
        dim: 8,
        max_len: 50,
        ..SsdRecConfig::default()
    };
    let model = SsdRec::new(&graph, cfg8);
    let path = std::env::temp_dir().join("ssdrec_it_arch.ssdt");
    save_params(&model.store, &path).unwrap();

    let cfg16 = SsdRecConfig {
        dim: 16,
        max_len: 50,
        ..SsdRecConfig::default()
    };
    let mut wrong = SsdRec::new(&graph, cfg16);
    assert!(load_params(&mut wrong.store, &path).is_err());
}

#[test]
fn recommendations_exclude_pad_and_respect_k() {
    let (split, graph) = setup();
    let cfg = SsdRecConfig {
        dim: 8,
        max_len: 50,
        ..SsdRecConfig::default()
    };
    let model = SsdRec::new(&graph, cfg);
    let ex = &split.test[0];
    let recs = model.recommend(ex.user, &ex.seq, 7);
    assert!(recs.len() <= 7);
    assert!(
        recs.iter().all(|&(item, _)| item != 0),
        "pad item recommended"
    );
    assert!(recs.iter().all(|&(_, s)| s.is_finite()));
}

/// The paper's §III-G space-complexity claim: parameters are dominated by
/// the `O(|V| + |U|)` embedding tables, so doubling the catalogue roughly
/// doubles the parameter count while the rest stays fixed.
#[test]
fn parameter_count_scales_with_catalogue() {
    let small = SyntheticConfig::beauty()
        .scaled(0.1)
        .with_seed(1)
        .generate();
    let large = SyntheticConfig::beauty()
        .scaled(0.2)
        .with_seed(1)
        .generate();
    let gs = build_graph(&small, &GraphConfig::default());
    let gl = build_graph(&large, &GraphConfig::default());
    let cfg = SsdRecConfig {
        dim: 8,
        max_len: 50,
        ..SsdRecConfig::default()
    };
    let ms = SsdRec::new(&gs, cfg.clone());
    let ml = SsdRec::new(&gl, cfg);

    let d = 8;
    let emb_small = (small.num_items + 1 + small.num_users) * d;
    let emb_large = (large.num_items + 1 + large.num_users) * d;
    let fixed_small = ms.store.num_scalars() - emb_small;
    let fixed_large = ml.store.num_scalars() - emb_large;
    assert_eq!(
        fixed_small, fixed_large,
        "non-embedding parameters should not scale with |V|+|U|"
    );
    assert!(ml.store.num_scalars() > ms.store.num_scalars());
}
