//! The chaos suite: deterministic fault injection against the two
//! crash-sensitive subsystems.
//!
//! * **Training**: a run killed by an injected panic mid-training and then
//!   `--resume`d must finish **byte-for-byte identical** to a run that was
//!   never interrupted — loss bits, metric bits and checkpoint bytes.
//! * **Serving**: injected read/write/worker faults must never deadlock or
//!   corrupt the server; once a fault is consumed, responses return to
//!   bit-identical top-K, workers respawn, `/metrics` reports the recovery
//!   counters, and an overloaded queue sheds with 503 instead of growing.
//!
//! The fault registry is process-global, so every test here serialises
//! behind one mutex (arming guards alone are not enough: an unfaulted
//! baseline phase would still bump another test's hit counters).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use ssdrec::core::{SsdRec, SsdRecConfig};
use ssdrec::data::{prepare, Split, SyntheticConfig};
use ssdrec::graph::{build_graph, GraphConfig};
use ssdrec::models::{
    train_with_checkpoints, BackboneKind, CheckpointConfig, RecModel, SeqRec, TrainConfig,
    TrainReport,
};
use ssdrec::serve::{
    client, json, request_with_retry, serve, ClientError, Engine, EngineConfig, RecError,
    RetryPolicy, ServerStats,
};
use ssdrec::stream::{
    load_current, open_or_create_log, retrain, ArchSpec, CheckpointDir, LogHeader, RetrainOutcome,
    RetrainSpec, StreamLog,
};
use ssdrec::tensor::save_params;
use ssdrec_testkit::fault::{assert_fired_exactly, FaultPlan};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn state_path(tag: &str) -> PathBuf {
    let dir = PathBuf::from("target").join("ssdrec-test");
    std::fs::create_dir_all(&dir).expect("test dir");
    let path = dir.join(format!("chaos_{tag}.sstc"));
    let _ = std::fs::remove_file(&path); // never resume from a stale run
    path
}

// ---------------------------------------------------------------------------
// Training: kill + resume ≡ uninterrupted
// ---------------------------------------------------------------------------

fn ssdrec_world() -> (Split, SsdRec) {
    let raw = SyntheticConfig::sports()
        .scaled(0.03)
        .with_seed(7)
        .generate();
    let (dataset, split) = prepare(&raw, 50, 2);
    let graph = build_graph(&dataset, &GraphConfig::default());
    let cfg = SsdRecConfig {
        dim: 8,
        max_len: 50,
        seed: 7,
        ..SsdRecConfig::default()
    };
    let model = SsdRec::new(&graph, cfg);
    (split, model)
}

fn train_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 4,
        batch_size: 32,
        seed: 7,
        ..TrainConfig::default()
    }
}

/// Everything observable about a finished run, excluding wall-clock times:
/// final-loss bits, HR@10/NDCG@10 bits, and the exact model checkpoint
/// bytes `save_params` would ship to serving.
fn fingerprint(report: &TrainReport, model: &SsdRec, tag: &str) -> (u32, u64, u64, Vec<u8>) {
    let path = state_path(&format!("fp_{tag}")).with_extension("ssdt");
    save_params(model.store(), &path).expect("save fingerprint checkpoint");
    let bytes = std::fs::read(&path).expect("read fingerprint checkpoint");
    let _ = std::fs::remove_file(&path);
    (
        report.final_loss.to_bits(),
        report.test.hr10.to_bits(),
        report.test.ndcg10.to_bits(),
        bytes,
    )
}

#[test]
fn killed_and_resumed_training_is_bit_identical() {
    let _g = locked();
    let tc = train_cfg();

    // Reference: 4 epochs straight through (checkpointing on, so the save
    // path itself is part of both runs).
    let straight_state = state_path("straight");
    let (split, mut straight) = ssdrec_world();
    let straight_report = train_with_checkpoints(
        &mut straight,
        &split,
        &tc,
        Some(&CheckpointConfig::new(&straight_state)),
    )
    .expect("uninterrupted run");
    let want = fingerprint(&straight_report, &straight, "straight");

    // Kill: an injected panic right after the epoch-2 state save, exactly
    // like a `kill -9` between epochs.
    let killed_state = state_path("killed");
    let (split, mut victim) = ssdrec_world();
    {
        let _armed = FaultPlan::new().panic("train.epoch", 2).arm();
        let ckpt = CheckpointConfig::new(&killed_state);
        let died = catch_unwind(AssertUnwindSafe(|| {
            train_with_checkpoints(&mut victim, &split, &tc, Some(&ckpt))
        }));
        assert!(died.is_err(), "the injected panic must kill the run");
        assert_fired_exactly("train.epoch", 1);
    }
    assert!(
        killed_state.exists(),
        "the epoch-2 state must have survived the kill"
    );

    // Resume into a *fresh* process-equivalent: a brand-new model whose
    // every parameter, optimizer moment and RNG word comes from the file.
    let (split, mut resumed) = ssdrec_world();
    let resumed_report = train_with_checkpoints(
        &mut resumed,
        &split,
        &tc,
        Some(&CheckpointConfig {
            path: killed_state.clone(),
            every: 1,
            resume: true,
        }),
    )
    .expect("resumed run");
    assert_eq!(resumed_report.epochs_run, straight_report.epochs_run);

    let got = fingerprint(&resumed_report, &resumed, "resumed");
    assert_eq!(got.0, want.0, "final-loss bits diverged after resume");
    assert_eq!(got.1, want.1, "HR@10 bits diverged after resume");
    assert_eq!(got.2, want.2, "NDCG@10 bits diverged after resume");
    assert_eq!(got.3, want.3, "checkpoint bytes diverged after resume");

    let _ = std::fs::remove_file(&straight_state);
    let _ = std::fs::remove_file(&killed_state);
}

#[test]
fn faulted_state_save_fails_cleanly_without_a_torn_file() {
    let _g = locked();
    let raw = SyntheticConfig::beauty()
        .scaled(0.05)
        .with_seed(3)
        .generate();
    let (dataset, split) = prepare(&raw, 20, 2);
    let mut model = SeqRec::new(BackboneKind::Gru4Rec, dataset.num_items, 8, 20, 5);
    let path = state_path("torn");
    let tc = TrainConfig {
        epochs: 1,
        batch_size: 32,
        seed: 5,
        ..TrainConfig::default()
    };
    let _armed = FaultPlan::new().error("ckpt.save", 1).arm();
    let err = train_with_checkpoints(&mut model, &split, &tc, Some(&CheckpointConfig::new(&path)))
        .expect_err("the injected save fault must surface");
    assert!(err.contains("injected fault at ckpt.save"), "{err}");
    assert!(!path.exists(), "a failed save must not leave a state file");
    assert!(
        !path.with_extension("sstc.tmp").exists(),
        "no temp file may survive a failed save"
    );
    assert_fired_exactly("ckpt.save", 1);
}

// ---------------------------------------------------------------------------
// Serving: faults never corrupt, recovery is bit-identical
// ---------------------------------------------------------------------------

const NUM_ITEMS: usize = 30;

fn chaos_server() -> ssdrec::serve::ServerHandle {
    let model = SeqRec::new(BackboneKind::SasRec, NUM_ITEMS, 8, 10, 42);
    let engine = Engine::new(
        model.into(),
        EngineConfig {
            workers: 1,
            max_len: 10,
            cache_capacity: 0, // every request must cross the worker
            ..EngineConfig::default()
        },
        Arc::new(ServerStats::new()),
    );
    serve(engine, "127.0.0.1:0").expect("bind ephemeral port")
}

const REQ: &str = "{\"user\":0,\"seq\":[3,9,4,1],\"k\":8}";

fn post_ok(addr: std::net::SocketAddr, body: &str) -> String {
    let (status, resp) = client::post(addr, "/recommend", body).expect("request");
    assert_eq!(status, 200, "{resp}");
    resp
}

#[test]
fn read_fault_gives_500_then_recovers_bit_identically() {
    let _g = locked();
    let handle = chaos_server();
    let addr = handle.addr();
    let baseline = post_ok(addr, REQ);

    let _armed = FaultPlan::new().error("serve.read", 1).arm();
    // The fault fires the moment the connection opens, so depending on the
    // race with the client's own write the client sees either the server's
    // 500 or a transport error (the server closed while it was still
    // sending) — both are honest observations of a failed read.
    match client::post(addr, "/recommend", REQ) {
        Ok((status, body)) => {
            assert_eq!(status, 500, "{body}");
            assert!(body.contains("injected fault at serve.read"), "{body}");
        }
        Err(ClientError::Io(_)) | Err(ClientError::Truncated { .. }) => {}
        Err(other) => panic!("unexpected client error: {other:?}"),
    }
    assert_eq!(
        post_ok(addr, REQ),
        baseline,
        "post-fault response must match the pre-fault bytes"
    );
    assert_fired_exactly("serve.read", 1);
    assert!(
        handle.engine().stats().io_faults.load(Ordering::Relaxed) >= 1,
        "read fault must be counted"
    );
}

#[test]
fn write_fault_is_healed_transparently_by_the_retrying_client() {
    let _g = locked();
    let handle = chaos_server();
    let addr = handle.addr();
    let baseline = post_ok(addr, REQ);

    // Two consecutive dropped responses: the client must retry through
    // both (deterministic backoff) and land on the identical bytes.
    let _armed = FaultPlan::new()
        .error("serve.write", 1)
        .error("serve.write", 2)
        .arm();
    let (status, body) = request_with_retry(
        addr,
        "POST",
        "/recommend",
        Some(REQ),
        &RetryPolicy::default(),
    )
    .expect("retry must eventually succeed");
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, baseline, "healed response must match baseline bytes");
    assert_fired_exactly("serve.write", 2);
}

#[test]
fn worker_panic_respawns_without_corrupting_results() {
    let _g = locked();
    let handle = chaos_server();
    let addr = handle.addr();
    let baseline = post_ok(addr, REQ);

    let _armed = FaultPlan::new().panic("engine.batch", 1).arm();
    // The panicked worker's job is dropped: its caller gets a clean 500.
    let (status, body) = client::post(addr, "/recommend", REQ).expect("request");
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("worker failed"), "{body}");
    // The respawned worker serves the identical bytes.
    assert_eq!(post_ok(addr, REQ), baseline);
    assert_fired_exactly("engine.batch", 1);

    // /metrics reports the recovery, including the injection counter
    // (read while still armed — disarming clears the registry).
    let (status, metrics) = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(status, 200);
    let m = json::parse(&metrics).expect("metrics JSON");
    let faults = m.get("faults").expect("faults section");
    assert_eq!(
        faults.get("worker_panics").unwrap().as_usize(),
        Some(1),
        "{metrics}"
    );
    assert!(
        faults.get("injected_total").unwrap().as_usize().unwrap() >= 1,
        "{metrics}"
    );
}

#[test]
fn overloaded_queue_sheds_with_503_and_never_deadlocks() {
    let _g = locked();
    let model = SeqRec::new(BackboneKind::SasRec, NUM_ITEMS, 8, 10, 42);
    let engine = Arc::new(Engine::new(
        model.into(),
        EngineConfig {
            workers: 1,
            max_batch: 1,
            linger: Duration::from_millis(1),
            cache_capacity: 0,
            max_len: 10,
            max_queue: 1,
            ..EngineConfig::default()
        },
        Arc::new(ServerStats::new()),
    ));

    // Stall the single worker on its first batch while six barrier-released
    // clients pile onto a one-slot queue: at most the stalled batch and one
    // queued job can be in flight, so several requests must shed.
    let _armed = FaultPlan::new().delay_ms("engine.batch", 400, 1).arm();
    let clients = 6;
    let barrier = Arc::new(Barrier::new(clients));
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                engine
                    .recommend(0, &[1 + c % NUM_ITEMS, 5, 9], 4)
                    .map(|_| ())
            })
        })
        .collect();
    let results: Vec<_> = threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();

    let shed = results
        .iter()
        .filter(|r| matches!(r, Err(RecError::Overloaded)))
        .count();
    let ok = results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(shed + ok, clients, "unexpected failure kind in {results:?}");
    assert!(shed >= 1, "no request was shed: {results:?}");
    assert!(ok >= 1, "every request was shed: {results:?}");
    assert_eq!(
        engine.stats().shed_total.load(Ordering::Relaxed),
        shed as u64
    );

    // Post-storm: the queue has drained and fresh requests succeed.
    assert!(engine.recommend(0, &[2, 4, 6], 4).is_ok());
    assert_eq!(engine.queue_depth(), 0, "queue depth must return to zero");
    engine.shutdown();
}

#[test]
fn faulted_ann_build_fails_engine_construction_without_a_torn_index() {
    use ssdrec::serve::{RetrievalConfig, RetrievalMode};

    let _g = locked();
    let ann_cfg = || EngineConfig {
        max_len: 10,
        retrieval: RetrievalConfig {
            mode: RetrievalMode::Ann,
            ann_m: 8,
            ef_search: 64, // ≥ catalogue ⇒ exhaustive, comparable to exact
        },
        ..EngineConfig::default()
    };
    let model = || SeqRec::new(BackboneKind::SasRec, NUM_ITEMS, 8, 10, 42);

    // The index is built all-or-nothing before any worker spawns: an
    // injected build fault must surface as a clean constructor error —
    // no engine, no workers, no partially-linked index.
    let armed = FaultPlan::new().error("ann.build", 1).arm();
    let err = Engine::try_new(model().into(), ann_cfg(), Arc::new(ServerStats::new()))
        .err()
        .expect("faulted ann build must fail Engine::try_new");
    assert!(err.contains("ann.build"), "{err}");
    assert_fired_exactly("ann.build", 1);
    drop(armed);

    // Once the fault is consumed, a fresh build succeeds and the engine
    // serves the exact-path bytes (exhaustive beam ⇒ bit-identical).
    let exact = Engine::new(
        model().into(),
        EngineConfig {
            max_len: 10,
            ..EngineConfig::default()
        },
        Arc::new(ServerStats::new()),
    );
    let ann = Engine::try_new(model().into(), ann_cfg(), Arc::new(ServerStats::new()))
        .expect("clean rebuild after disarm");
    let seq = vec![3, 9, 4, 1];
    let want = exact.recommend(0, &seq, 8).expect("exact");
    let got = ann.recommend(0, &seq, 8).expect("ann");
    assert_eq!(got.items.len(), want.items.len());
    for (g, w) in got.items.iter().zip(&want.items) {
        assert_eq!(g.0, w.0, "item diverged after recovery");
        assert_eq!(g.1.to_bits(), w.1.to_bits(), "score bits after recovery");
    }
    exact.shutdown();
    ann.shutdown();
}

// ---------------------------------------------------------------------------
// Streaming: kill mid-retrain / mid-publish / mid-swap, resume, equivalence
// ---------------------------------------------------------------------------

const STREAM_CATALOG: LogHeader = LogHeader {
    num_users: 6,
    num_items: 20,
};

fn stream_scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from("target")
        .join("ssdrec-test")
        .join(format!("chaos_stream_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn stream_spec() -> RetrainSpec {
    let tc = TrainConfig::default();
    RetrainSpec {
        arch: ArchSpec {
            backbone: BackboneKind::SasRec,
            dim: 8,
            max_len: 12,
            seed: 7,
        },
        epochs: 3,
        batch_size: 16,
        lr: tc.lr,
        weight_decay: tc.weight_decay,
        checkpoint_every: 1,
    }
}

fn seed_stream(log: &mut StreamLog) {
    for u in 0..STREAM_CATALOG.num_users {
        for t in 0..6 {
            log.append(u, (u * 3 + t) % STREAM_CATALOG.num_items + 1)
                .expect("append");
        }
    }
    log.sync().expect("sync");
}

fn delta_stream(log: &mut StreamLog) {
    for u in 0..STREAM_CATALOG.num_users {
        log.append(u, (u + 7) % STREAM_CATALOG.num_items + 1)
            .expect("append");
    }
    log.sync().expect("sync");
}

/// Ingest the day-0 history and publish v1 under `dir`.
fn stream_world(dir: &std::path::Path) -> (PathBuf, PathBuf) {
    let log_path = dir.join("events.sslg");
    let root = dir.join("ckpts");
    let (mut log, _) = open_or_create_log(&log_path, Some(STREAM_CATALOG)).expect("create log");
    seed_stream(&mut log);
    drop(log);
    match retrain(&log_path, &root, &stream_spec(), false).expect("publish v1") {
        RetrainOutcome::Trained(t) => assert_eq!(t.version, 1),
        other => panic!("expected v1, got {other:?}"),
    }
    (log_path, root)
}

fn append_delta(log_path: &std::path::Path) {
    let (mut log, _) = open_or_create_log(log_path, None).expect("reopen log");
    delta_stream(&mut log);
}

/// The published parameter bytes of version `v` (the serving artifact; the
/// training-state file carries wall-clock fields and is excluded on purpose).
fn published_model_bytes(root: &std::path::Path, v: u64) -> Vec<u8> {
    std::fs::read(CheckpointDir::new(root).model_path(v)).expect("read published model")
}

/// What an engine booted from `CURRENT` answers for a fixed probe request.
fn stream_served_bits(log_path: &std::path::Path, root: &std::path::Path) -> Vec<(usize, u32)> {
    let cur = load_current(log_path, root)
        .expect("load CURRENT")
        .expect("published");
    let engine = Engine::new(
        cur.model.into(),
        EngineConfig {
            workers: 1,
            max_len: cur.meta.spec.arch.max_len,
            cache_capacity: 0,
            ..EngineConfig::default()
        },
        Arc::new(ServerStats::new()),
    );
    let rec = engine.recommend(0, &[3, 9, 4, 1], 8).expect("recommend");
    rec.items.iter().map(|&(i, s)| (i, s.to_bits())).collect()
}

#[test]
fn killed_retrain_resumes_to_bytes_identical_to_uninterrupted_run() {
    let _g = locked();
    let prev_threads = ssdrec::runtime::threads();
    for threads in [1usize, 4] {
        ssdrec::runtime::set_threads(threads);
        let tag = format!("retrain_t{threads}");

        // Reference: v1 → delta → v2, never interrupted, in its own world.
        let (ref_log, ref_root) = stream_world(&stream_scratch(&format!("{tag}_ref")));
        append_delta(&ref_log);
        match retrain(&ref_log, &ref_root, &stream_spec(), false).expect("reference v2") {
            RetrainOutcome::Trained(t) => assert_eq!(t.version, 2),
            other => panic!("expected v2, got {other:?}"),
        }

        // Victim: identical history, but the v2 round is killed by an
        // injected panic right after the epoch-2 work checkpoint.
        let (log, root) = stream_world(&stream_scratch(&format!("{tag}_victim")));
        append_delta(&log);
        {
            let _armed = FaultPlan::new().panic("train.epoch", 2).arm();
            let died = catch_unwind(AssertUnwindSafe(|| {
                retrain(&log, &root, &stream_spec(), false)
            }));
            assert!(died.is_err(), "the injected panic must kill the round");
            assert_fired_exactly("train.epoch", 1);
        }
        let cd = CheckpointDir::new(&root);
        assert_eq!(
            cd.current_version().expect("CURRENT"),
            Some(1),
            "kill must not flip CURRENT"
        );
        assert!(
            cd.work_dir().exists(),
            "the in-flight round must survive the kill"
        );

        // Resume: the re-run picks up the pinned round from work/ and lands
        // on byte-identical published parameters and served response bits.
        match retrain(&log, &root, &stream_spec(), false).expect("resumed v2") {
            RetrainOutcome::Trained(t) => assert_eq!(t.version, 2),
            other => panic!("expected v2, got {other:?}"),
        }
        assert!(!cd.work_dir().exists(), "publish must clear work/");
        assert_eq!(
            published_model_bytes(&root, 2),
            published_model_bytes(&ref_root, 2),
            "published v2 parameters diverged after kill+resume (threads={threads})"
        );
        assert_eq!(
            stream_served_bits(&log, &root),
            stream_served_bits(&ref_log, &ref_root),
            "served bytes diverged after kill+resume (threads={threads})"
        );
    }
    ssdrec::runtime::set_threads(prev_threads);
}

#[test]
fn killed_publish_is_rerun_idempotently() {
    let _g = locked();

    let (ref_log, ref_root) = stream_world(&stream_scratch("publish_ref"));
    append_delta(&ref_log);
    retrain(&ref_log, &ref_root, &stream_spec(), false).expect("reference v2");

    let (log, root) = stream_world(&stream_scratch("publish_victim"));
    let v1_bits = stream_served_bits(&log, &root);
    append_delta(&log);
    // Kill inside the publish sequence: v2's files are being written but
    // CURRENT has not flipped. Readers must still see v1 only.
    {
        let _armed = FaultPlan::new().error("stream.publish", 1).arm();
        let err = retrain(&log, &root, &stream_spec(), false)
            .expect_err("the injected publish fault must surface");
        assert!(err.contains("stream.publish"), "{err}");
        assert_fired_exactly("stream.publish", 1);
    }
    let cd = CheckpointDir::new(&root);
    assert_eq!(
        cd.current_version().expect("CURRENT"),
        Some(1),
        "torn publish must not flip CURRENT"
    );
    assert_eq!(
        stream_served_bits(&log, &root),
        v1_bits,
        "CURRENT must still serve v1's bytes"
    );

    // The re-run completes the same pinned round; the published bytes match
    // the never-interrupted reference exactly.
    match retrain(&log, &root, &stream_spec(), false).expect("rerun v2") {
        RetrainOutcome::Trained(t) => assert_eq!(t.version, 2),
        other => panic!("expected v2, got {other:?}"),
    }
    assert_eq!(cd.current_version().expect("CURRENT"), Some(2));
    assert_eq!(
        published_model_bytes(&root, 2),
        published_model_bytes(&ref_root, 2),
        "published v2 parameters diverged after a torn publish"
    );
}

#[test]
fn killed_swap_keeps_v1_serving_until_the_retry_lands_v2() {
    use ssdrec::serve::{EngineSlot, LoadedModel, ReloadOutcome};

    let _g = locked();
    let (log_path, root) = stream_world(&stream_scratch("swap"));

    let booted = load_current(&log_path, &root)
        .expect("load")
        .expect("published");
    let max_len = booted.meta.spec.arch.max_len;
    let stats = Arc::new(ServerStats::new());
    let engine = Engine::new(
        booted.model.into(),
        EngineConfig {
            workers: 1,
            max_len,
            cache_capacity: 0,
            ..EngineConfig::default()
        },
        Arc::clone(&stats),
    );
    let (l, r) = (log_path.clone(), root.clone());
    let slot = EngineSlot::reloadable(
        engine,
        booted.version,
        Box::new(move |current| {
            Ok(
                ssdrec::stream::load_newer(&l, &r, current)?.map(|newer| LoadedModel {
                    model: newer.model.into(),
                    version: newer.version,
                }),
            )
        }),
    );
    let probe = |slot: &EngineSlot| -> Vec<(usize, u32)> {
        let rec = slot
            .engine()
            .recommend(0, &[3, 9, 4, 1], 8)
            .expect("recommend");
        rec.items.iter().map(|&(i, s)| (i, s.to_bits())).collect()
    };
    let v1_bits = probe(&slot);

    // Publish v2, then kill the swap at the deliberate kill point — after
    // the replacement engine is built, before the commit.
    append_delta(&log_path);
    retrain(&log_path, &root, &stream_spec(), false).expect("publish v2");
    {
        let _armed = FaultPlan::new().panic("serve.swap", 1).arm();
        let err = slot
            .reload()
            .expect_err("the injected swap fault must surface");
        assert!(err.contains("serve.swap"), "{err}");
        assert_fired_exactly("serve.swap", 1);
    }
    assert_eq!(
        stats.model_version(),
        1,
        "killed swap must not flip the version"
    );
    assert_eq!(stats.swap_failed_total.load(Ordering::SeqCst), 1);
    assert_eq!(
        probe(&slot),
        v1_bits,
        "v1 must keep serving bit-identically after the kill"
    );

    // The retry lands v2 and serves exactly the published bytes.
    assert_eq!(
        slot.reload().expect("retry"),
        ReloadOutcome::Swapped { version: 2 }
    );
    assert_eq!(probe(&slot), stream_served_bits(&log_path, &root));
    assert_eq!(stats.swap_total.load(Ordering::SeqCst), 1);
    slot.shutdown();
}
