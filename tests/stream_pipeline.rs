//! End-to-end online loop, no faults: ingest into the append-only log,
//! run incremental retrain rounds into a versioned checkpoint directory,
//! and hot-swap the published versions into a serving [`EngineSlot`].

use std::path::PathBuf;
use std::sync::Arc;

use ssdrec::models::{BackboneKind, TrainConfig};
use ssdrec::serve::{Engine, EngineConfig, EngineSlot, LoadedModel, ReloadOutcome, ServerStats};
use ssdrec::stream::{
    load_current, load_newer, load_version, open_or_create_log, retrain, ArchSpec, CheckpointDir,
    LogHeader, RetrainOutcome, RetrainSpec, StreamLog,
};

const CATALOG: LogHeader = LogHeader {
    num_users: 6,
    num_items: 20,
};

fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from("target")
        .join("ssdrec-test")
        .join(format!("stream_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn spec() -> RetrainSpec {
    let tc = TrainConfig::default();
    RetrainSpec {
        arch: ArchSpec {
            backbone: BackboneKind::SasRec,
            dim: 8,
            max_len: 12,
            seed: 7,
        },
        epochs: 2,
        batch_size: 16,
        lr: tc.lr,
        weight_decay: tc.weight_decay,
        checkpoint_every: 1,
    }
}

/// Six events per user: enough history for every user to clear the
/// leave-one-out minimum.
fn seed_events(log: &mut StreamLog) {
    for u in 0..CATALOG.num_users {
        for t in 0..6 {
            log.append(u, (u * 3 + t) % CATALOG.num_items + 1)
                .expect("append");
        }
    }
    log.sync().expect("sync");
}

fn delta_events(log: &mut StreamLog) {
    for u in 0..CATALOG.num_users {
        log.append(u, (u + 7) % CATALOG.num_items + 1)
            .expect("append");
    }
    log.sync().expect("sync");
}

fn engine_for(model: ssdrec::core::SsdRec, max_len: usize) -> Engine {
    Engine::new(
        model.into(),
        EngineConfig {
            workers: 1,
            max_len,
            cache_capacity: 0,
            ..EngineConfig::default()
        },
        Arc::new(ServerStats::new()),
    )
}

fn served_bits(model: ssdrec::core::SsdRec, max_len: usize) -> Vec<(usize, u32)> {
    let engine = engine_for(model, max_len);
    let rec = engine.recommend(0, &[3, 9, 4, 1], 8).expect("recommend");
    rec.items.iter().map(|&(i, s)| (i, s.to_bits())).collect()
}

#[test]
fn ingest_retrain_publish_and_reload_round_trips() {
    let dir = scratch("roundtrip");
    let log_path = dir.join("events.sslg");
    let root = dir.join("ckpts");

    // Day 0: bulk ingest, first full round publishes v1.
    let (mut log, created) = open_or_create_log(&log_path, Some(CATALOG)).expect("create log");
    assert!(created);
    seed_events(&mut log);
    let v1_end = log.end();
    drop(log);

    let sp = spec();
    let v1 = match retrain(&log_path, &root, &sp, false).expect("first round") {
        RetrainOutcome::Trained(t) => t,
        other => panic!("expected a trained version, got {other:?}"),
    };
    assert_eq!(v1.version, 1);
    assert_eq!(v1.consumed, v1_end);
    assert_eq!(
        CheckpointDir::new(&root)
            .current_version()
            .expect("CURRENT"),
        Some(1)
    );

    // Nothing new in the log: the round is a no-op.
    assert!(matches!(
        retrain(&log_path, &root, &sp, false).expect("no-op round"),
        RetrainOutcome::UpToDate { version: 1 }
    ));

    // Day 1: a delta lands, the incremental round publishes v2.
    let (mut log, created) = open_or_create_log(&log_path, None).expect("reopen log");
    assert!(!created);
    delta_events(&mut log);
    drop(log);
    let v2 = match retrain(&log_path, &root, &sp, false).expect("second round") {
        RetrainOutcome::Trained(t) => t,
        other => panic!("expected a trained version, got {other:?}"),
    };
    assert_eq!(v2.version, 2);
    assert_eq!(v2.delta_records, CATALOG.num_users as u64);

    // Both versions stay loadable; v1 still replays to its pinned offset.
    let old = load_version(&log_path, &root, 1).expect("load v1");
    assert_eq!(old.meta.consumed, v1_end);
    let cur = load_current(&log_path, &root)
        .expect("load CURRENT")
        .expect("published");
    assert_eq!(cur.version, 2);

    // Loading the same version twice is bit-deterministic end to end: the
    // served top-K bytes agree exactly.
    let again = load_current(&log_path, &root)
        .expect("reload")
        .expect("published");
    let max_len = cur.meta.spec.arch.max_len;
    assert_eq!(
        served_bits(cur.model, max_len),
        served_bits(again.model, max_len)
    );

    // And the reload probe sees v2 only from an older baseline.
    assert!(load_newer(&log_path, &root, 2).expect("probe").is_none());
    assert_eq!(
        load_newer(&log_path, &root, 1)
            .expect("probe")
            .expect("newer")
            .version,
        2
    );
}

#[test]
fn published_versions_hot_swap_into_a_serving_slot() {
    let dir = scratch("hotswap");
    let log_path = dir.join("events.sslg");
    let root = dir.join("ckpts");

    let (mut log, _) = open_or_create_log(&log_path, Some(CATALOG)).expect("create log");
    seed_events(&mut log);
    drop(log);
    let sp = spec();
    retrain(&log_path, &root, &sp, false).expect("publish v1");

    // Boot the server exactly the way `serve --ckpt-dir` does: load CURRENT,
    // wire a loader that probes for anything newer.
    let booted = load_current(&log_path, &root)
        .expect("load")
        .expect("published");
    let max_len = booted.meta.spec.arch.max_len;
    let stats = Arc::new(ServerStats::new());
    let engine = Engine::new(
        booted.model.into(),
        EngineConfig {
            workers: 1,
            max_len,
            cache_capacity: 16,
            ..EngineConfig::default()
        },
        Arc::clone(&stats),
    );
    let (loader_log, loader_root) = (log_path.clone(), root.clone());
    let slot = EngineSlot::reloadable(
        engine,
        booted.version,
        Box::new(move |current| {
            Ok(
                load_newer(&loader_log, &loader_root, current)?.map(|newer| LoadedModel {
                    model: newer.model.into(),
                    version: newer.version,
                }),
            )
        }),
    );

    // Nothing newer yet: the poll is a cheap no-op.
    assert_eq!(
        slot.reload().expect("probe"),
        ReloadOutcome::Unchanged { version: 1 }
    );
    let before = slot.engine().recommend(0, &[3, 9, 4, 1], 8).expect("v1");

    // A delta + retrain publishes v2; the next reload swaps it in and the
    // served bytes become exactly what loading v2 directly would serve.
    let (mut log, _) = open_or_create_log(&log_path, None).expect("reopen");
    delta_events(&mut log);
    drop(log);
    retrain(&log_path, &root, &sp, false).expect("publish v2");
    assert_eq!(
        slot.reload().expect("swap"),
        ReloadOutcome::Swapped { version: 2 }
    );
    assert_eq!(stats.model_version(), 2);

    let after = slot.engine().recommend(0, &[3, 9, 4, 1], 8).expect("v2");
    let oracle = load_version(&log_path, &root, 2).expect("load v2");
    let want = served_bits(oracle.model, max_len);
    let got: Vec<(usize, u32)> = after.items.iter().map(|&(i, s)| (i, s.to_bits())).collect();
    assert_eq!(
        got, want,
        "swapped-in engine must serve exactly the published v2 bytes"
    );
    assert_ne!(
        got,
        before
            .items
            .iter()
            .map(|&(i, s)| (i, s.to_bits()))
            .collect::<Vec<_>>(),
        "the delta round must actually change the model"
    );
    slot.shutdown();
}
