//! Golden determinism: a fixed seed, a tiny synthetic dataset and two
//! training epochs must reproduce *exactly* the HR@10 / NDCG@10 recorded
//! here. This pins the full pipeline — testkit RNG stream, data generation,
//! graph construction, training order, evaluation — across refactors; see
//! the stream-stability contract in `ssdrec_testkit::rng`.
//!
//! If this test fails after an intentional RNG or pipeline change, rerun
//! with `--nocapture`, verify the change is deliberate, and update the
//! golden values together with a CHANGES.md note.

use ssdrec::core::{SsdRec, SsdRecConfig};
use ssdrec::data::{
    encode_dataset, plan_leave_one_out, prepare, ColumnarReader, StoreExamples, SyntheticConfig,
};
use ssdrec::graph::{build_graph, build_graph_from_store, GraphConfig};
use ssdrec::models::{train, train_from_source, SourceSplit, TrainConfig};

const GOLDEN_HR10: f64 = 0.6071428571428571;
const GOLDEN_NDCG10: f64 = 0.3714333486875927;

#[test]
fn fixed_seed_two_epochs_reproduces_golden_metrics() {
    let raw = SyntheticConfig::sports()
        .scaled(0.08)
        .with_seed(7)
        .generate();
    let (dataset, split) = prepare(&raw, 50, 2);
    let graph = build_graph(&dataset, &GraphConfig::default());
    let cfg = SsdRecConfig {
        dim: 8,
        max_len: 50,
        seed: 7,
        ..SsdRecConfig::default()
    };
    let mut model = SsdRec::new(&graph, cfg);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 32,
        seed: 7,
        ..TrainConfig::default()
    };
    let report = train(&mut model, &split, &tc);

    println!("hr10 = {:?}", report.test.hr10);
    println!("ndcg10 = {:?}", report.test.ndcg10);
    assert_eq!(
        report.test.hr10, GOLDEN_HR10,
        "HR@10 drifted from the golden value — the RNG stream or pipeline changed"
    );
    assert_eq!(
        report.test.ndcg10, GOLDEN_NDCG10,
        "NDCG@10 drifted from the golden value — the RNG stream or pipeline changed"
    );
}

/// The out-of-core path — encode the prepared dataset to a columnar file,
/// re-plan the split over the windowed reader, build the graph in counting
/// passes, train through [`StoreExamples`] — must land on the *same* golden
/// HR@10 / NDCG@10 as the in-RAM path above: not approximately, exactly.
#[test]
fn columnar_store_training_reproduces_golden_metrics() {
    let raw = SyntheticConfig::sports()
        .scaled(0.08)
        .with_seed(7)
        .generate();
    // `prepare` already 5-core-filters and truncates to max_len; the file
    // holds exactly what the in-RAM pipeline trains on.
    let (dataset, _) = prepare(&raw, 50, 2);
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("golden");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("sports.ssdc");
    encode_dataset(&dataset, &path).expect("encode");
    let reader = ColumnarReader::open(&path).expect("open");

    let plan = plan_leave_one_out(&reader, 5, 2);
    let graph = build_graph_from_store(&reader, &GraphConfig::default());
    let cfg = SsdRecConfig {
        dim: 8,
        max_len: 50,
        seed: 7,
        ..SsdRecConfig::default()
    };
    let mut model = SsdRec::new(&graph, cfg);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 32,
        seed: 7,
        ..TrainConfig::default()
    };
    let sources = SourceSplit {
        train: &StoreExamples {
            store: &reader,
            refs: &plan.train,
        },
        valid: &StoreExamples {
            store: &reader,
            refs: &plan.valid,
        },
        test: &StoreExamples {
            store: &reader,
            refs: &plan.test,
        },
    };
    let report = train_from_source(&mut model, &sources, &tc, None, None).expect("train");

    assert_eq!(
        report.test.hr10, GOLDEN_HR10,
        "columnar-store training drifted from the golden HR@10"
    );
    assert_eq!(
        report.test.ndcg10, GOLDEN_NDCG10,
        "columnar-store training drifted from the golden NDCG@10"
    );
    let _ = std::fs::remove_file(path);
}
