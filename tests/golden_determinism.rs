//! Golden determinism: a fixed seed, a tiny synthetic dataset and two
//! training epochs must reproduce *exactly* the HR@10 / NDCG@10 recorded
//! here. This pins the full pipeline — testkit RNG stream, data generation,
//! graph construction, training order, evaluation — across refactors; see
//! the stream-stability contract in `ssdrec_testkit::rng`.
//!
//! If this test fails after an intentional RNG or pipeline change, rerun
//! with `--nocapture`, verify the change is deliberate, and update the
//! golden values together with a CHANGES.md note.

use ssdrec::core::{SsdRec, SsdRecConfig};
use ssdrec::data::{
    encode_dataset, plan_leave_one_out, prepare, ColumnarReader, StoreExamples, SyntheticConfig,
};
use ssdrec::denoise::Mgsd;
use ssdrec::graph::{build_graph, build_graph_from_store, GraphConfig};
use ssdrec::models::{
    train, train_from_source, BackboneKind, ContrastiveSeqRec, RecModel, SourceSplit, TrainConfig,
};
use ssdrec::tensor::save_params;

const GOLDEN_HR10: f64 = 0.6071428571428571;
const GOLDEN_NDCG10: f64 = 0.3714333486875927;

// The contrastive (CL4SRec) training scenario on the same world.
const GOLDEN_CL_HR10: f64 = 0.5714285714285714;
const GOLDEN_CL_NDCG10: f64 = 0.2423614063351918;

// The multi-granularity (MGSD-WSS) scenario — weak supervision active,
// since the sports profile carries ground-truth noise labels.
const GOLDEN_MGSD_HR10: f64 = 0.6428571428571429;
const GOLDEN_MGSD_NDCG10: f64 = 0.3390576517898549;

#[test]
fn fixed_seed_two_epochs_reproduces_golden_metrics() {
    let raw = SyntheticConfig::sports()
        .scaled(0.08)
        .with_seed(7)
        .generate();
    let (dataset, split) = prepare(&raw, 50, 2);
    let graph = build_graph(&dataset, &GraphConfig::default());
    let cfg = SsdRecConfig {
        dim: 8,
        max_len: 50,
        seed: 7,
        ..SsdRecConfig::default()
    };
    let mut model = SsdRec::new(&graph, cfg);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 32,
        seed: 7,
        ..TrainConfig::default()
    };
    let report = train(&mut model, &split, &tc);

    println!("hr10 = {:?}", report.test.hr10);
    println!("ndcg10 = {:?}", report.test.ndcg10);
    assert_eq!(
        report.test.hr10, GOLDEN_HR10,
        "HR@10 drifted from the golden value — the RNG stream or pipeline changed"
    );
    assert_eq!(
        report.test.ndcg10, GOLDEN_NDCG10,
        "NDCG@10 drifted from the golden value — the RNG stream or pipeline changed"
    );
}

/// Fingerprint one training run of `model`: the exact test HR@10/NDCG@10
/// and the exact checkpoint bytes `save_params` writes.
fn run_pinned<M: RecModel>(mut model: M, tag: &str) -> (f64, f64, Vec<u8>) {
    let raw = SyntheticConfig::sports()
        .scaled(0.08)
        .with_seed(7)
        .generate();
    let (_dataset, split) = prepare(&raw, 50, 2);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 32,
        seed: 7,
        ..TrainConfig::default()
    };
    let report = train(&mut model, &split, &tc);
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("golden");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join(format!("golden_{tag}.ssdt"));
    save_params(model.store(), &path).expect("save checkpoint");
    let bytes = std::fs::read(&path).expect("read checkpoint");
    let _ = std::fs::remove_file(&path);
    (report.test.hr10, report.test.ndcg10, bytes)
}

fn sports_dims() -> (usize, usize) {
    let raw = SyntheticConfig::sports()
        .scaled(0.08)
        .with_seed(7)
        .generate();
    let (dataset, _) = prepare(&raw, 50, 2);
    (dataset.num_users, dataset.num_items)
}

/// The contrastive scenario pinned end to end: exact HR@10/NDCG@10, and the
/// checkpoint bytes of two independent runs must be identical (the view
/// salt is part of the trainer's RNG stream, so any batch-composition or
/// ordering leak into view generation would flip these bits).
#[test]
fn contrastive_run_reproduces_golden_metrics() {
    let (_, num_items) = sports_dims();
    let mk = || ContrastiveSeqRec::new(BackboneKind::SasRec, num_items, 8, 50, 7);
    let (hr10, ndcg10, bytes) = run_pinned(mk(), "cl_a");
    println!("cl hr10 = {hr10:?}");
    println!("cl ndcg10 = {ndcg10:?}");
    assert_eq!(
        hr10, GOLDEN_CL_HR10,
        "contrastive HR@10 drifted from the golden value"
    );
    assert_eq!(
        ndcg10, GOLDEN_CL_NDCG10,
        "contrastive NDCG@10 drifted from the golden value"
    );
    let (_, _, bytes2) = run_pinned(mk(), "cl_b");
    assert_eq!(
        bytes, bytes2,
        "contrastive checkpoint bytes not reproducible"
    );
}

/// The multi-granularity scenario pinned end to end, weak supervision
/// included (the sports profile carries ground-truth noise labels, so the
/// gate trains on them rather than on correlation targets).
#[test]
fn mgsd_run_reproduces_golden_metrics() {
    let (num_users, num_items) = sports_dims();
    let mk = || Mgsd::new(num_users, num_items, 8, 50, 7);
    let (hr10, ndcg10, bytes) = run_pinned(mk(), "mgsd_a");
    println!("mgsd hr10 = {hr10:?}");
    println!("mgsd ndcg10 = {ndcg10:?}");
    assert_eq!(
        hr10, GOLDEN_MGSD_HR10,
        "MGSD HR@10 drifted from the golden value"
    );
    assert_eq!(
        ndcg10, GOLDEN_MGSD_NDCG10,
        "MGSD NDCG@10 drifted from the golden value"
    );
    let (_, _, bytes2) = run_pinned(mk(), "mgsd_b");
    assert_eq!(bytes, bytes2, "MGSD checkpoint bytes not reproducible");
}

/// MGSD trained out-of-core from a `.ssdc` file must land on the *same*
/// golden metrics as the in-RAM run: this pins the NOIS section round-trip
/// — the columnar reader feeding the generator's noise labels back into the
/// weak-supervision gate, bit for bit.
#[test]
fn mgsd_columnar_store_training_matches_in_ram_golden() {
    let raw = SyntheticConfig::sports()
        .scaled(0.08)
        .with_seed(7)
        .generate();
    let (dataset, _) = prepare(&raw, 50, 2);
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("golden");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("sports_mgsd.ssdc");
    encode_dataset(&dataset, &path).expect("encode");
    let reader = ColumnarReader::open(&path).expect("open");

    let plan = plan_leave_one_out(&reader, 5, 2);
    let mut model = Mgsd::new(dataset.num_users, dataset.num_items, 8, 50, 7);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 32,
        seed: 7,
        ..TrainConfig::default()
    };
    let sources = SourceSplit {
        train: &StoreExamples {
            store: &reader,
            refs: &plan.train,
        },
        valid: &StoreExamples {
            store: &reader,
            refs: &plan.valid,
        },
        test: &StoreExamples {
            store: &reader,
            refs: &plan.test,
        },
    };
    let report = train_from_source(&mut model, &sources, &tc, None, None).expect("train");
    assert_eq!(
        report.test.hr10, GOLDEN_MGSD_HR10,
        "columnar-store MGSD training drifted from the golden HR@10"
    );
    assert_eq!(
        report.test.ndcg10, GOLDEN_MGSD_NDCG10,
        "columnar-store MGSD training drifted from the golden NDCG@10"
    );
    let _ = std::fs::remove_file(path);
}

/// The out-of-core path — encode the prepared dataset to a columnar file,
/// re-plan the split over the windowed reader, build the graph in counting
/// passes, train through [`StoreExamples`] — must land on the *same* golden
/// HR@10 / NDCG@10 as the in-RAM path above: not approximately, exactly.
#[test]
fn columnar_store_training_reproduces_golden_metrics() {
    let raw = SyntheticConfig::sports()
        .scaled(0.08)
        .with_seed(7)
        .generate();
    // `prepare` already 5-core-filters and truncates to max_len; the file
    // holds exactly what the in-RAM pipeline trains on.
    let (dataset, _) = prepare(&raw, 50, 2);
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("golden");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("sports.ssdc");
    encode_dataset(&dataset, &path).expect("encode");
    let reader = ColumnarReader::open(&path).expect("open");

    let plan = plan_leave_one_out(&reader, 5, 2);
    let graph = build_graph_from_store(&reader, &GraphConfig::default());
    let cfg = SsdRecConfig {
        dim: 8,
        max_len: 50,
        seed: 7,
        ..SsdRecConfig::default()
    };
    let mut model = SsdRec::new(&graph, cfg);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 32,
        seed: 7,
        ..TrainConfig::default()
    };
    let sources = SourceSplit {
        train: &StoreExamples {
            store: &reader,
            refs: &plan.train,
        },
        valid: &StoreExamples {
            store: &reader,
            refs: &plan.valid,
        },
        test: &StoreExamples {
            store: &reader,
            refs: &plan.test,
        },
    };
    let report = train_from_source(&mut model, &sources, &tc, None, None).expect("train");

    assert_eq!(
        report.test.hr10, GOLDEN_HR10,
        "columnar-store training drifted from the golden HR@10"
    );
    assert_eq!(
        report.test.ndcg10, GOLDEN_NDCG10,
        "columnar-store training drifted from the golden NDCG@10"
    );
    let _ = std::fs::remove_file(path);
}
