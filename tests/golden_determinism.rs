//! Golden determinism: a fixed seed, a tiny synthetic dataset and two
//! training epochs must reproduce *exactly* the HR@10 / NDCG@10 recorded
//! here. This pins the full pipeline — testkit RNG stream, data generation,
//! graph construction, training order, evaluation — across refactors; see
//! the stream-stability contract in `ssdrec_testkit::rng`.
//!
//! If this test fails after an intentional RNG or pipeline change, rerun
//! with `--nocapture`, verify the change is deliberate, and update the
//! golden values together with a CHANGES.md note.

use ssdrec::core::{SsdRec, SsdRecConfig};
use ssdrec::data::{prepare, SyntheticConfig};
use ssdrec::graph::{build_graph, GraphConfig};
use ssdrec::models::{train, TrainConfig};

const GOLDEN_HR10: f64 = 0.6071428571428571;
const GOLDEN_NDCG10: f64 = 0.3714333486875927;

#[test]
fn fixed_seed_two_epochs_reproduces_golden_metrics() {
    let raw = SyntheticConfig::sports()
        .scaled(0.08)
        .with_seed(7)
        .generate();
    let (dataset, split) = prepare(&raw, 50, 2);
    let graph = build_graph(&dataset, &GraphConfig::default());
    let cfg = SsdRecConfig {
        dim: 8,
        max_len: 50,
        seed: 7,
        ..SsdRecConfig::default()
    };
    let mut model = SsdRec::new(&graph, cfg);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 32,
        seed: 7,
        ..TrainConfig::default()
    };
    let report = train(&mut model, &split, &tc);

    println!("hr10 = {:?}", report.test.hr10);
    println!("ndcg10 = {:?}", report.test.ndcg10);
    assert_eq!(
        report.test.hr10, GOLDEN_HR10,
        "HR@10 drifted from the golden value — the RNG stream or pipeline changed"
    );
    assert_eq!(
        report.test.ndcg10, GOLDEN_NDCG10,
        "NDCG@10 drifted from the golden value — the RNG stream or pipeline changed"
    );
}
