#!/usr/bin/env bash
# Offline-first CI gate for the SSDRec workspace.
#
#   1. Deny-list: no Cargo.toml may name a registry dependency — only
#      workspace path crates (ssdrec-*) are allowed.
#   2. cargo fmt --check
#   3. Offline release build of the whole workspace.
#   4. Offline test run.
#   5. Bench binaries smoke-run in fast mode (1 iteration each).
#
# Everything runs with CARGO_NET_OFFLINE=true: any attempt to reach the
# registry fails the build immediately.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== registry-dependency deny-list =="
# Collect dependency names from every [*dependencies] section. A dependency
# is acceptable only if it is an ssdrec-* path crate (directly or via
# workspace = true).
fail=0
while IFS= read -r manifest; do
    deps=$(awk '
        /^\[/ { in_deps = ($0 ~ /dependencies\]$/ || $0 ~ /dependencies\./) }
        in_deps && /^[A-Za-z0-9_-]+[ \t]*=/ {
            split($0, kv, "=");
            gsub(/[ \t]/, "", kv[1]);
            print kv[1];
        }
    ' "$manifest")
    for dep in $deps; do
        case "$dep" in
            ssdrec-*|version|edition|description) ;;
            *)
                echo "FORBIDDEN: registry dependency \`$dep\` in $manifest"
                fail=1
                ;;
        esac
    done
done < <(find . -path ./target -prune -o -name Cargo.toml -print)
if [ "$fail" -ne 0 ]; then
    echo "deny-list check FAILED: the workspace must stay registry-free"
    exit 1
fi
echo "ok: no registry dependencies"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== offline release build =="
cargo build --release --workspace

echo "== offline tests =="
cargo test --workspace -q

echo "== bench smoke (SSDREC_BENCH_FAST=1) =="
SSDREC_BENCH_FAST=1 cargo bench --workspace -q >/dev/null

echo "CI: all checks passed"
