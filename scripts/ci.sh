#!/usr/bin/env bash
# Offline-first CI gate for the SSDRec workspace.
#
#   1. Deny-list: no Cargo.toml may name a registry dependency — only
#      workspace path crates (ssdrec-*) are allowed.
#   2. cargo fmt --check
#   3. Offline release build of the whole workspace.
#   4. Offline test run.
#   5. Bench binaries smoke-run in fast mode (1 iteration each).
#   6. Serve smoke: train a tiny checkpoint, serve it on an ephemeral
#      port, issue one request over bash /dev/tcp (no curl), assert a
#      well-formed response, shut down cleanly.
#   7. Chaos smoke: re-serve the checkpoint with SSDREC_FAULTS arming one
#      read fault and one worker panic; retry until the response matches
#      the fault-free baseline byte-for-byte and /metrics reports the
#      recovery counters.
#   8. bench_serve latency-report smoke (writes target/ssdrec-bench/).
#   9. Thread determinism: the golden HR@10/NDCG@10 test and a CLI train
#      run must produce byte-identical metrics under SSDREC_THREADS=1
#      and SSDREC_THREADS=4.
#  10. Backend parity: the same golden test and CLI train run must produce
#      byte-identical metrics under SSDREC_BACKEND=reference and
#      SSDREC_BACKEND=blocked (the v1 kernel bits-contract).
#  11. bench_runtime smoke: the thread sweep and the per-kernel backend
#      sweep run in fast mode and BENCH_runtime.json at the repo root
#      parses as JSON with the kernel_sweep_1t section present.
#  12. Retrieval smoke: re-serve the checkpoint with --retrieval ann at an
#      exhaustive --ef-search; the response body must be byte-identical to
#      the exact-path baseline and /metrics must report the ann section.
#  13. bench_serve --retrieval smoke: the recall harness runs in fast mode
#      and BENCH_retrieval.json parses with recall@10 >= 0.95 per catalog.
#  14. Hot-swap smoke: ingest the smoke profile into an append-only log,
#      retrain into a versioned checkpoint dir, serve CURRENT, capture a
#      baseline body, ingest a delta under an armed stream.append latency
#      fault, retrain again, POST /reload — the body must change and
#      /metrics must report swap_total:1 at the new model_version.
#  15. bench_stream smoke: the online-loop harness (ingest throughput,
#      delta-retrain wall-clock, swap pause p99) runs in fast mode and
#      BENCH_stream.json parses with its telemetry fields present.
#  16. Out-of-core smoke: gen-data writes a columnar .ssdc file, `train
#      --data` runs off it in windowed and ram modes with byte-identical
#      metric lines, ingest bulk-loads it into a log, and bench_data runs
#      in fast mode with a valid BENCH_data.json.
#  17. Training-scenario smoke: `train --contrastive` and `train --mgsd`
#      each run two epochs and must emit byte-identical metric lines at
#      SSDREC_THREADS=1 and --threads 4.
#  18. table4 --fast smoke: the denoiser table runs every method in fast
#      mode and results/table4_fast.json parses with one row per method,
#      including the CL4SRec and MGSD-WSS rows.
#
# Everything runs with CARGO_NET_OFFLINE=true: any attempt to reach the
# registry fails the build immediately.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== registry-dependency deny-list =="
# Collect dependency names from every [*dependencies] section. A dependency
# is acceptable only if it is an ssdrec-* path crate (directly or via
# workspace = true).
fail=0
while IFS= read -r manifest; do
    deps=$(awk '
        /^\[/ { in_deps = ($0 ~ /dependencies\]$/ || $0 ~ /dependencies\./) }
        in_deps && /^[A-Za-z0-9_-]+[ \t]*=/ {
            split($0, kv, "=");
            gsub(/[ \t]/, "", kv[1]);
            print kv[1];
        }
    ' "$manifest")
    for dep in $deps; do
        case "$dep" in
            ssdrec-*|version|edition|description) ;;
            *)
                echo "FORBIDDEN: registry dependency \`$dep\` in $manifest"
                fail=1
                ;;
        esac
    done
done < <(find . -path ./target -prune -o -name Cargo.toml -print)
if [ "$fail" -ne 0 ]; then
    echo "deny-list check FAILED: the workspace must stay registry-free"
    exit 1
fi
echo "ok: no registry dependencies"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== offline release build =="
cargo build --release --workspace

echo "== offline tests =="
cargo test --workspace -q

echo "== bench smoke (SSDREC_BENCH_FAST=1) =="
SSDREC_BENCH_FAST=1 cargo bench --workspace -q >/dev/null

echo "== serve smoke =="
SMOKE_DIR=target/ssdrec-smoke
mkdir -p "$SMOKE_DIR"
SMOKE_FLAGS="--profile beauty --scale 0.03 --dim 8 --max-len 12 --seed 7"
./target/release/ssdrec train $SMOKE_FLAGS --epochs 1 --out "$SMOKE_DIR/ckpt.ssdt" >/dev/null
./target/release/ssdrec serve $SMOKE_FLAGS --model "$SMOKE_DIR/ckpt.ssdt" \
    --addr 127.0.0.1:0 >"$SMOKE_DIR/serve.log" &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 300); do
    ADDR=$(sed -n 's#^serving on http://##p' "$SMOKE_DIR/serve.log" | head -1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "serve smoke FAILED: server did not announce its address"
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
PORT=${ADDR##*:}
# One request over bash's /dev/tcp (the workspace has no curl dependency).
# seq=1 is the only history guaranteed to be in range: the tiny smoke
# dataset can 5-core down to a catalogue of just a couple of items.
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf 'GET /recommend?user=0&seq=1&k=5 HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n' >&3
RESP=$(cat <&3)
exec 3<&- 3>&-
if ! printf '%s' "$RESP" | grep -q '"items":\['; then
    echo "serve smoke FAILED: malformed response: $RESP"
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf 'POST /shutdown HTTP/1.1\r\nHost: smoke\r\nContent-Length: 0\r\nConnection: close\r\n\r\n' >&3
cat <&3 >/dev/null
exec 3<&- 3>&-
wait "$SERVE_PID"
echo "ok: served a request on $ADDR and shut down cleanly"

echo "== chaos smoke (SSDREC_FAULTS: injected faults + recovery) =="
# The serve-smoke response doubles as the fault-free baseline: scores are
# bit-identical across server instances of the same checkpoint.
BASELINE=$(printf '%s' "$RESP" | awk 'body {print} /^\r?$/ {body=1}')
if [ -z "$BASELINE" ]; then
    echo "chaos smoke FAILED: could not extract the baseline body"
    exit 1
fi
SSDREC_FAULTS="serve.read:error:1,engine.batch:panic:1" \
    ./target/release/ssdrec serve $SMOKE_FLAGS --model "$SMOKE_DIR/ckpt.ssdt" \
    --addr 127.0.0.1:0 --workers 1 --cache 0 >"$SMOKE_DIR/chaos.log" 2>&1 &
CHAOS_PID=$!
ADDR=""
for _ in $(seq 1 300); do
    ADDR=$(sed -n 's#^serving on http://##p' "$SMOKE_DIR/chaos.log" | head -1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "chaos smoke FAILED: faulted server did not announce its address"
    kill "$CHAOS_PID" 2>/dev/null || true
    exit 1
fi
PORT=${ADDR##*:}
# Retry through the armed plan: one attempt dies on the injected read
# fault, one panics the worker mid-batch, and the respawned worker must
# then serve the exact baseline bytes.
BODY=""
TRIES=0
for _ in $(seq 1 20); do
    TRIES=$((TRIES + 1))
    BODY=$( { exec 3<>"/dev/tcp/127.0.0.1/$PORT" &&
              printf 'GET /recommend?user=0&seq=1&k=5 HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n' >&3 &&
              cat <&3 | awk 'body {print} /^\r?$/ {body=1}'; } 2>/dev/null ) || true
    [ "$BODY" = "$BASELINE" ] && break
    sleep 0.1
done
if [ "$BODY" != "$BASELINE" ]; then
    echo "chaos smoke FAILED: response never recovered to the baseline after $TRIES attempts"
    echo "  baseline: $BASELINE"
    echo "  last    : $BODY"
    kill "$CHAOS_PID" 2>/dev/null || true
    exit 1
fi
METRICS=$( { exec 3<>"/dev/tcp/127.0.0.1/$PORT" &&
             printf 'GET /metrics HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n' >&3 &&
             cat <&3 | awk 'body {print} /^\r?$/ {body=1}'; } )
for want in '"worker_panics":1' '"injected_total":2'; do
    if ! printf '%s' "$METRICS" | grep -qF "$want"; then
        echo "chaos smoke FAILED: /metrics missing $want: $METRICS"
        kill "$CHAOS_PID" 2>/dev/null || true
        exit 1
    fi
done
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf 'POST /shutdown HTTP/1.1\r\nHost: chaos\r\nContent-Length: 0\r\nConnection: close\r\n\r\n' >&3
cat <&3 >/dev/null
exec 3<&- 3>&-
wait "$CHAOS_PID"
echo "ok: recovered to baseline bytes in $TRIES attempt(s); worker respawned after injected panic"

echo "== retrieval smoke (ann exhaustive-ef vs exact baseline) =="
# An ef_search that covers any smoke catalogue makes the ANN stage
# exhaustive, so the two-stage path must reproduce the exact path's bytes.
./target/release/ssdrec serve $SMOKE_FLAGS --model "$SMOKE_DIR/ckpt.ssdt" \
    --addr 127.0.0.1:0 --retrieval ann --ef-search 100000 \
    >"$SMOKE_DIR/ann.log" 2>&1 &
ANN_PID=$!
ADDR=""
for _ in $(seq 1 300); do
    ADDR=$(sed -n 's#^serving on http://##p' "$SMOKE_DIR/ann.log" | head -1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "retrieval smoke FAILED: ann server did not announce its address"
    kill "$ANN_PID" 2>/dev/null || true
    exit 1
fi
PORT=${ADDR##*:}
ANN_BODY=$( { exec 3<>"/dev/tcp/127.0.0.1/$PORT" &&
              printf 'GET /recommend?user=0&seq=1&k=5 HTTP/1.1\r\nHost: ann\r\nConnection: close\r\n\r\n' >&3 &&
              cat <&3 | awk 'body {print} /^\r?$/ {body=1}'; } )
if [ "$ANN_BODY" != "$BASELINE" ]; then
    echo "retrieval smoke FAILED: ann response diverged from the exact baseline"
    echo "  baseline: $BASELINE"
    echo "  ann     : $ANN_BODY"
    kill "$ANN_PID" 2>/dev/null || true
    exit 1
fi
ANN_METRICS=$( { exec 3<>"/dev/tcp/127.0.0.1/$PORT" &&
                 printf 'GET /metrics HTTP/1.1\r\nHost: ann\r\nConnection: close\r\n\r\n' >&3 &&
                 cat <&3 | awk 'body {print} /^\r?$/ {body=1}'; } )
if ! printf '%s' "$ANN_METRICS" | grep -qF '"mode":"ann"'; then
    echo "retrieval smoke FAILED: /metrics missing the ann retrieval section: $ANN_METRICS"
    kill "$ANN_PID" 2>/dev/null || true
    exit 1
fi
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf 'POST /shutdown HTTP/1.1\r\nHost: ann\r\nContent-Length: 0\r\nConnection: close\r\n\r\n' >&3
cat <&3 >/dev/null
exec 3<&- 3>&-
wait "$ANN_PID"
echo "ok: exhaustive-ef ann bytes match the exact baseline; /metrics reports ann"

echo "== bench_serve latency smoke =="
SSDREC_BENCH_FAST=1 cargo run --release -q -p ssdrec-bench --bin bench_serve >/dev/null
test -f target/ssdrec-bench/serve_latency.csv
echo "ok: latency report at target/ssdrec-bench/serve_latency.csv"

echo "== thread determinism (golden metrics at 1 vs 4 threads) =="
# The golden test pins exact f64 metrics; it must pass under both thread
# counts — any parallel kernel that reorders a float sum fails it.
SSDREC_THREADS=1 cargo test --release -q --test golden_determinism
SSDREC_THREADS=4 cargo test --release -q --test golden_determinism
# And a CLI train run must emit byte-identical metric lines either way.
DET_DIR=target/ssdrec-smoke
mkdir -p "$DET_DIR"
SSDREC_THREADS=1 ./target/release/ssdrec train $SMOKE_FLAGS --epochs 1 \
    | grep -E '^(valid|test)' >"$DET_DIR/metrics_t1.txt"
./target/release/ssdrec train $SMOKE_FLAGS --epochs 1 --threads 4 \
    | grep -E '^(valid|test)' >"$DET_DIR/metrics_t4.txt"
if ! diff -u "$DET_DIR/metrics_t1.txt" "$DET_DIR/metrics_t4.txt"; then
    echo "thread determinism FAILED: metrics differ between 1 and 4 threads"
    exit 1
fi
echo "ok: golden + CLI metrics identical at 1 and 4 threads"

echo "== backend parity (golden metrics: reference vs blocked kernels) =="
# The v1 kernel bits-contract: the cache-blocked backend must reproduce the
# reference oracle's bits exactly, so the pinned golden metrics pass under
# either backend and a CLI train run emits byte-identical metric lines.
SSDREC_BACKEND=reference cargo test --release -q --test golden_determinism
SSDREC_BACKEND=blocked cargo test --release -q --test golden_determinism
BE_DIR=target/ssdrec-smoke
mkdir -p "$BE_DIR"
./target/release/ssdrec train $SMOKE_FLAGS --epochs 1 --backend reference \
    | grep -E '^(valid|test)' >"$BE_DIR/metrics_reference.txt"
./target/release/ssdrec train $SMOKE_FLAGS --epochs 1 --backend blocked \
    | grep -E '^(valid|test)' >"$BE_DIR/metrics_blocked.txt"
if ! diff -u "$BE_DIR/metrics_reference.txt" "$BE_DIR/metrics_blocked.txt"; then
    echo "backend parity FAILED: metrics differ between reference and blocked kernels"
    exit 1
fi
echo "ok: golden + CLI metrics identical under reference and blocked backends"

echo "== pool identity (pooled vs fresh CLI metrics) =="
# The step-scoped buffer pool must never change a bit of output: a train
# run with the pool on and one with SSDREC_POOL=0 (plain allocations) must
# emit byte-identical metric lines.
POOL_DIR=target/ssdrec-smoke
mkdir -p "$POOL_DIR"
./target/release/ssdrec train $SMOKE_FLAGS --epochs 1 \
    | grep -E '^(valid|test)' >"$POOL_DIR/metrics_pooled.txt"
SSDREC_POOL=0 ./target/release/ssdrec train $SMOKE_FLAGS --epochs 1 \
    | grep -E '^(valid|test)' >"$POOL_DIR/metrics_fresh.txt"
if ! diff -u "$POOL_DIR/metrics_pooled.txt" "$POOL_DIR/metrics_fresh.txt"; then
    echo "pool identity FAILED: metrics differ between pooled and fresh runs"
    exit 1
fi
echo "ok: pooled and fresh metrics byte-identical"

echo "== bench_alloc pool-telemetry smoke =="
# Fast mode still asserts the >= 90% steady-state hit-rate contract
# internally; here we additionally check the JSON report parses.
SSDREC_BENCH_FAST=1 cargo run --release -q -p ssdrec-bench --bin bench_alloc >/dev/null
test -f BENCH_alloc.json
if command -v python3 >/dev/null 2>&1; then
    python3 -c 'import json; r = json.load(open("BENCH_alloc.json")); [r[k] for k in ("pool_hits", "pool_misses", "bytes_recycled", "hit_rate_from_step2")]'
fi
# The smoke overwrote the committed full-mode report; restore it so CI
# leaves the tree clean.
git checkout -- BENCH_alloc.json 2>/dev/null || true
echo "ok: BENCH_alloc.json written and valid"

echo "== bench_runtime thread + kernel sweep smoke =="
SSDREC_BENCH_FAST=1 cargo run --release -q -p ssdrec-bench --bin bench_runtime >/dev/null
test -f BENCH_runtime.json
# Must parse as JSON with the per-kernel backend sweep present: python3 if
# available, else the workspace parser already validated it inside
# bench_runtime before writing (and asserted bits_match on every kernel).
if command -v python3 >/dev/null 2>&1; then
    python3 -c '
import json
r = json.load(open("BENCH_runtime.json"))
ks = r["kernel_sweep_1t"]
assert ks, "kernel_sweep_1t is empty"
assert all(p["bits_match"] for p in ks), "a kernel diverged between backends"
assert any(p["kernel"].startswith("gemm_") for p in ks), "gemm variants missing"
'
fi
# The smoke overwrote the committed full-mode report; restore it so CI
# leaves the tree clean.
git checkout -- BENCH_runtime.json 2>/dev/null || true
echo "ok: BENCH_runtime.json written and valid"

echo "== bench_serve retrieval recall smoke =="
SSDREC_BENCH_FAST=1 cargo run --release -q -p ssdrec-bench --bin bench_serve -- --retrieval >/dev/null
test -f BENCH_retrieval.json
# The harness already asserts recall@10 >= 0.95 and the determinism
# contract internally; double-check the committed-schema fields parse.
if command -v python3 >/dev/null 2>&1; then
    python3 -c '
import json
r = json.load(open("BENCH_retrieval.json"))
assert r["deterministic_rebuild"] and r["thread_invariant_build"]
cats = r["catalogs"]
assert cats, "catalogs is empty"
for c in cats:
    assert c["recall_at_10"] >= 0.95, c
    assert c["serve_bits_stable"], c
'
fi
# The smoke overwrote the committed full-mode report; restore it so CI
# leaves the tree clean.
git checkout -- BENCH_retrieval.json 2>/dev/null || true
echo "ok: BENCH_retrieval.json written and valid"

echo "== hot-swap smoke (ingest → retrain → serve --ckpt-dir → /reload) =="
STREAM_DIR=target/ssdrec-smoke/stream
rm -rf "$STREAM_DIR"
mkdir -p "$STREAM_DIR"
STREAM_LOG="$STREAM_DIR/events.sslg"
STREAM_CKPTS="$STREAM_DIR/ckpts"
RETRAIN_FLAGS="--epochs 1 --dim 8 --max-len 12 --seed 7 --batch-size 32"
# Day 0: bulk-load the smoke profile into the append-only log, publish v1.
./target/release/ssdrec ingest --log "$STREAM_LOG" $SMOKE_FLAGS >/dev/null
./target/release/ssdrec retrain --log "$STREAM_LOG" --ckpt-dir "$STREAM_CKPTS" \
    $RETRAIN_FLAGS >/dev/null
./target/release/ssdrec serve --ckpt-dir "$STREAM_CKPTS" --log "$STREAM_LOG" \
    --addr 127.0.0.1:0 --workers 1 --cache 0 >"$STREAM_DIR/serve.log" 2>&1 &
SWAP_PID=$!
ADDR=""
for _ in $(seq 1 300); do
    ADDR=$(sed -n 's#^serving on http://##p' "$STREAM_DIR/serve.log" | head -1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "hot-swap smoke FAILED: server did not announce its address"
    kill "$SWAP_PID" 2>/dev/null || true
    exit 1
fi
PORT=${ADDR##*:}
V1_BODY=$( { exec 3<>"/dev/tcp/127.0.0.1/$PORT" &&
             printf 'GET /recommend?user=0&seq=1&k=5 HTTP/1.1\r\nHost: swap\r\nConnection: close\r\n\r\n' >&3 &&
             cat <&3 | awk 'body {print} /^\r?$/ {body=1}'; } )
if [ -z "$V1_BODY" ]; then
    echo "hot-swap smoke FAILED: empty v1 baseline body"
    kill "$SWAP_PID" 2>/dev/null || true
    exit 1
fi
# Day 1: a small delta lands while a stream.append latency fault is armed
# (the writer must absorb the injected stall without corrupting the log),
# then the incremental round publishes v2.
SSDREC_FAULTS="stream.append:delay50:1" \
    ./target/release/ssdrec ingest --log "$STREAM_LOG" \
    --events "0:1,1:2,2:1,0:2" >/dev/null
./target/release/ssdrec retrain --log "$STREAM_LOG" --ckpt-dir "$STREAM_CKPTS" \
    $RETRAIN_FLAGS >/dev/null
RELOAD=$( { exec 3<>"/dev/tcp/127.0.0.1/$PORT" &&
            printf 'POST /reload HTTP/1.1\r\nHost: swap\r\nContent-Length: 0\r\nConnection: close\r\n\r\n' >&3 &&
            cat <&3 | awk 'body {print} /^\r?$/ {body=1}'; } )
if ! printf '%s' "$RELOAD" | grep -qF '"status":"swapped"'; then
    echo "hot-swap smoke FAILED: /reload did not swap: $RELOAD"
    kill "$SWAP_PID" 2>/dev/null || true
    exit 1
fi
V2_BODY=$( { exec 3<>"/dev/tcp/127.0.0.1/$PORT" &&
             printf 'GET /recommend?user=0&seq=1&k=5 HTTP/1.1\r\nHost: swap\r\nConnection: close\r\n\r\n' >&3 &&
             cat <&3 | awk 'body {print} /^\r?$/ {body=1}'; } )
if [ "$V2_BODY" = "$V1_BODY" ]; then
    echo "hot-swap smoke FAILED: the served body did not change after the swap"
    kill "$SWAP_PID" 2>/dev/null || true
    exit 1
fi
SWAP_METRICS=$( { exec 3<>"/dev/tcp/127.0.0.1/$PORT" &&
                  printf 'GET /metrics HTTP/1.1\r\nHost: swap\r\nConnection: close\r\n\r\n' >&3 &&
                  cat <&3 | awk 'body {print} /^\r?$/ {body=1}'; } )
for want in '"swap_total":1' '"model_version":2' '"swap_failed_total":0'; do
    if ! printf '%s' "$SWAP_METRICS" | grep -qF "$want"; then
        echo "hot-swap smoke FAILED: /metrics missing $want: $SWAP_METRICS"
        kill "$SWAP_PID" 2>/dev/null || true
        exit 1
    fi
done
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf 'POST /shutdown HTTP/1.1\r\nHost: swap\r\nContent-Length: 0\r\nConnection: close\r\n\r\n' >&3
cat <&3 >/dev/null
exec 3<&- 3>&-
wait "$SWAP_PID"
echo "ok: hot-swapped v1 → v2 with zero downtime; /metrics reports the swap"

echo "== bench_stream online-loop smoke =="
SSDREC_BENCH_FAST=1 cargo run --release -q -p ssdrec-bench --bin bench_stream >/dev/null
test -f BENCH_stream.json
if command -v python3 >/dev/null 2>&1; then
    python3 -c '
import json
r = json.load(open("BENCH_stream.json"))
assert r["ingest_records"] > 0 and r["ingest_records_per_sec"] > 0
assert r["retrain_delta_ms"] > 0 and r["swaps"] > 0
assert r["swap_pause_p99_ms"] >= 0 and r["pause_samples"] > 0
assert r["final_model_version"] == 2 + r["swaps"]
'
fi
# The smoke overwrote the committed full-mode report; restore it so CI
# leaves the tree clean.
git checkout -- BENCH_stream.json 2>/dev/null || true
echo "ok: BENCH_stream.json written and valid"

echo "== out-of-core smoke (gen-data → train --data windowed/ram → ingest --data) =="
OOC_DIR=target/ssdrec-smoke/ooc
rm -rf "$OOC_DIR"
mkdir -p "$OOC_DIR"
OOC_FILE="$OOC_DIR/smoke.ssdc"
./target/release/ssdrec gen-data --profile beauty --scale 0.1 --seed 7 \
    --out "$OOC_FILE" >/dev/null
test -f "$OOC_FILE"
# The same columnar file trained windowed and fully-decoded must emit
# byte-identical metric lines: the bounded-RAM path is not allowed to cost
# a single bit of output.
./target/release/ssdrec train --data "$OOC_FILE" --data-mode windowed \
    --epochs 1 --dim 8 --seed 7 \
    | grep -E '^(data|valid|test)' >"$OOC_DIR/metrics_windowed.txt"
./target/release/ssdrec train --data "$OOC_FILE" --data-mode ram \
    --epochs 1 --dim 8 --seed 7 \
    | grep -E '^(data|valid|test)' >"$OOC_DIR/metrics_ram.txt"
if ! diff -u "$OOC_DIR/metrics_windowed.txt" "$OOC_DIR/metrics_ram.txt"; then
    echo "out-of-core smoke FAILED: windowed and ram metrics differ"
    exit 1
fi
# Bulk-load the columnar file into a fresh log; the record count must
# match the file's interaction count.
./target/release/ssdrec ingest --log "$OOC_DIR/events.sslg" --data "$OOC_FILE" \
    >"$OOC_DIR/ingest.txt"
grep -q '^created' "$OOC_DIR/ingest.txt"
echo "ok: windowed and ram metrics byte-identical; columnar bulk-load ingested"

echo "== bench_data out-of-core pipeline smoke =="
SSDREC_BENCH_FAST=1 cargo run --release -q -p ssdrec-bench --bin bench_data >/dev/null
test -f BENCH_data.json
if command -v python3 >/dev/null 2>&1; then
    python3 -c '
import json
r = json.load(open("BENCH_data.json"))
assert r["interactions"] > 0 and r["file_bytes"] > 0
assert r["encode_interactions_per_sec"] > 0 and r["scan_interactions_per_sec"] > 0
assert r["graph_edges"] > 0 and r["graph_interactions_per_sec"] > 0
assert r["peak_rss_bytes"] >= 0 and r["rss_budget_bytes"] > 0
'
fi
# The smoke overwrote the committed full-mode report; restore it so CI
# leaves the tree clean.
git checkout -- BENCH_data.json 2>/dev/null || true
echo "ok: BENCH_data.json written and valid"

echo "== training-scenario smoke (--contrastive / --mgsd at 1 vs 4 threads) =="
SC_DIR=target/ssdrec-smoke/scenarios
mkdir -p "$SC_DIR"
for sc in contrastive mgsd; do
    SSDREC_THREADS=1 ./target/release/ssdrec train $SMOKE_FLAGS --epochs 2 --$sc \
        | grep -E '^(valid|test)' >"$SC_DIR/metrics_${sc}_t1.txt"
    ./target/release/ssdrec train $SMOKE_FLAGS --epochs 2 --$sc --threads 4 \
        | grep -E '^(valid|test)' >"$SC_DIR/metrics_${sc}_t4.txt"
    if ! diff -u "$SC_DIR/metrics_${sc}_t1.txt" "$SC_DIR/metrics_${sc}_t4.txt"; then
        echo "scenario smoke FAILED: --$sc metrics differ between 1 and 4 threads"
        exit 1
    fi
done
echo "ok: --contrastive and --mgsd metrics byte-identical at 1 and 4 threads"

echo "== table4 --fast JSON smoke (CL4SRec + MGSD-WSS rows) =="
rm -f results/table4_fast.json
cargo run --release -q -p ssdrec-bench --bin table4_denoisers -- --fast >/dev/null
test -f results/table4_fast.json
if command -v python3 >/dev/null 2>&1; then
    python3 -c '
import json
rows = json.load(open("results/table4_fast.json"))
assert len(rows) == 8, f"expected 8 rows, got {len(rows)}"
models = [r["model"] for r in rows]
for want in ("DSAN", "FMLP-Rec", "HSD", "DCRec", "STEAM", "CL4SRec", "MGSD-WSS", "SSDRec"):
    assert want in models, f"missing row {want}"
for r in rows:
    assert r["dataset"], r
    for k in ("hr10", "hr20", "ndcg10"):
        assert 0.0 <= r[k] <= 1.0, r
'
fi
# The fast run wrote scratch reports into results/; drop them so CI leaves
# the tree clean (the directory is not under version control).
rm -f results/table4_fast.json results/table4_denoisers.csv
echo "ok: table4_fast.json has one valid row per method, new rows included"

echo "CI: all checks passed"
