//! SSDRec as a plug-in (paper Table III, RQ1): wrap each of the six
//! mainstream sequential recommenders with the same three-stage denoising
//! framework and compare against the vanilla model.
//!
//! Run with: `cargo run --release --example plugin_backbones`

use ssdrec::core::{SsdRec, SsdRecConfig};
use ssdrec::data::{prepare, SyntheticConfig};
use ssdrec::graph::{build_graph, GraphConfig};
use ssdrec::models::{train, BackboneKind, SeqRec, TrainConfig};

fn main() {
    let raw = SyntheticConfig::sports().scaled(0.35).generate();
    let (dataset, split) = prepare(&raw, 50, 2);
    let graph = build_graph(&dataset, &GraphConfig::default());
    let tc = TrainConfig {
        epochs: 18,
        batch_size: 64,
        patience: 6,
        ..TrainConfig::default()
    };

    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "backbone", "HR@20 (w/o)", "HR@20 (w)", "improvement"
    );
    for kind in BackboneKind::all() {
        // Vanilla backbone.
        let mut base = SeqRec::new(kind, dataset.num_items, 16, 50, 7);
        let base_report = train(&mut base, &split, &tc);

        // The same backbone inside SSDRec.
        let cfg = SsdRecConfig {
            dim: 16,
            max_len: 50,
            backbone: kind,
            ..SsdRecConfig::default()
        };
        let mut wrapped = SsdRec::new(&graph, cfg);
        let wrapped_report = train(&mut wrapped, &split, &tc);

        let imp = wrapped_report.test.improvement_over(&base_report.test);
        println!(
            "{:<10} {:>12.4} {:>12.4} {:>+11.2}%",
            kind.name(),
            base_report.test.hr20,
            wrapped_report.test.hr20,
            imp
        );
    }
}
