//! Noise-identification analysis (paper Fig. 1 / §IV-E): inject labelled
//! noise into short sequences, train SSDRec and HSD, and compare their
//! over/under-denoising behaviour and score separation.
//!
//! Run with: `cargo run --release --example denoise_analysis`

use ssdrec::core::{SsdRec, SsdRecConfig};
use ssdrec::data::{inject_unobserved, prepare, SyntheticConfig};
use ssdrec::denoise::{Denoiser, Hsd};
use ssdrec::graph::{build_graph, GraphConfig};
use ssdrec::metrics::OupAccumulator;
use ssdrec::models::{train, BackboneKind, TrainConfig};

fn analyse<D: Denoiser>(name: &str, model: &D, split: &ssdrec::data::Split) {
    let mut acc = OupAccumulator::new();
    let (mut noise_score, mut n_noise) = (0.0f64, 0usize);
    let (mut clean_score, mut n_clean) = (0.0f64, 0usize);
    for ex in &split.test {
        let Some(noise) = &ex.noise else { continue };
        if ex.seq.is_empty() {
            continue;
        }
        acc.push(noise, &model.keep_decisions(&ex.seq, ex.user));
        for (&is_noise, &s) in noise.iter().zip(&model.keep_scores(&ex.seq, ex.user)) {
            if is_noise {
                noise_score += s as f64;
                n_noise += 1;
            } else {
                clean_score += s as f64;
                n_clean += 1;
            }
        }
    }
    println!(
        "{name:<8} under-denoising {:.3}  over-denoising {:.3}  keep-score noise/clean {:.3}/{:.3}",
        acc.under_denoising_ratio(),
        acc.over_denoising_ratio(),
        noise_score / n_noise.max(1) as f64,
        clean_score / n_clean.max(1) as f64,
    );
}

fn main() {
    // Clean generator + explicit injected noise, so labels are exact.
    let raw = SyntheticConfig::ml100k()
        .scaled(0.4)
        .with_noise_ratio(0.0)
        .generate();
    let noisy = inject_unobserved(&raw, 60, 2, 7);
    let (dataset, split) = prepare(&noisy, 50, 2);
    let graph = build_graph(&dataset, &GraphConfig::default());
    let tc = TrainConfig {
        epochs: 12,
        batch_size: 64,
        patience: 12,
        ..TrainConfig::default()
    };

    println!("training HSD (intra-sequence signals only) …");
    let mut hsd = Hsd::new(dataset.num_users, dataset.num_items, 16, 50, 7);
    train(&mut hsd, &split, &tc);

    println!("training SSDRec (inter-sequence graph priors) …\n");
    let cfg = SsdRecConfig {
        dim: 16,
        max_len: 50,
        backbone: BackboneKind::SasRec,
        ..SsdRecConfig::default()
    };
    let mut ssdrec = SsdRec::new(&graph, cfg);
    train(&mut ssdrec, &split, &tc);

    analyse("HSD", &hsd, &split);
    analyse("SSDRec", &ssdrec, &split);

    println!(
        "\nThe gap illustrates the paper's core claim: intra-sequence information \
         alone under-denoises; inter-sequence relations (stage 1) separate noise."
    );
}
