//! Explainability case study (paper Fig. 4 / RQ5): trace the three stages
//! for individual users — which position was augmented, which items were
//! inserted, which raw items were removed, and how the true next item's
//! score moves raw → augmented → denoised.
//!
//! Run with: `cargo run --release --example case_study`

use ssdrec::core::{SsdRec, SsdRecConfig};
use ssdrec::data::{prepare, SyntheticConfig};
use ssdrec::graph::{build_graph, GraphConfig};
use ssdrec::models::{train, BackboneKind, TrainConfig};
use ssdrec::tensor::Rng;

fn main() {
    let raw = SyntheticConfig::beauty().scaled(0.3).generate();
    let (dataset, split) = prepare(&raw, 50, 3);
    let graph = build_graph(&dataset, &GraphConfig::default());

    let cfg = SsdRecConfig {
        dim: 16,
        max_len: 50,
        backbone: BackboneKind::SasRec,
        ..SsdRecConfig::default()
    };
    let mut model = SsdRec::new(&graph, cfg);
    let tc = TrainConfig {
        epochs: 12,
        batch_size: 64,
        patience: 4,
        ..TrainConfig::default()
    };
    let report = train(&mut model, &split, &tc);
    println!("trained: test HR@20 {:.4}\n", report.test.hr20);

    let mut rng = Rng::seed(1);
    let mut shown = 0;
    for ex in &split.test {
        if ex.seq.len() < 5 || ex.seq.len() > 10 {
            continue;
        }
        let cs = model.explain(&ex.seq, ex.user, ex.target, &mut rng);
        println!("user {:>4}  next item {:>4}", ex.user, ex.target);
        println!("  raw sequence     : {:?}", cs.seq);
        if let (Some(p), Some((l, r))) = (cs.position, cs.inserted) {
            println!("  stage 2 inserts  : {l} and {r} around position {p}");
        }
        let removed: Vec<usize> = cs
            .seq
            .iter()
            .zip(&cs.kept)
            .filter(|(_, &k)| !k)
            .map(|(&it, _)| it)
            .collect();
        println!("  stage 3 removes  : {removed:?}");
        println!(
            "  target score     : raw {:+.3} → augmented {:+.3} → denoised {:+.3}\n",
            cs.raw_score, cs.augmented_score, cs.denoised_score
        );
        shown += 1;
        if shown >= 4 {
            break;
        }
    }
}
