//! Quickstart: train SSDRec end-to-end on a synthetic Amazon-Beauty-like
//! dataset and print the paper's standard metric row.
//!
//! Run with: `cargo run --release --example quickstart`

use ssdrec::core::{SsdRec, SsdRecConfig};
use ssdrec::data::{prepare, SyntheticConfig};
use ssdrec::graph::{build_graph, GraphConfig};
use ssdrec::models::{train, BackboneKind, TrainConfig};

fn main() {
    // 1. Data: a scaled Amazon-Beauty analogue with 10% planted noise.
    let raw = SyntheticConfig::beauty().scaled(0.3).generate();
    println!(
        "dataset {}: {} users, {} items, {} actions (avg len {:.1})",
        raw.name,
        raw.num_users,
        raw.num_items,
        raw.num_actions(),
        raw.avg_len()
    );

    // 2. Preprocess: 5-core filter, truncate to 50, leave-one-out split.
    let (dataset, split) = prepare(&raw, 50, 3);
    println!(
        "after 5-core filtering: {} items, {} train / {} valid / {} test examples",
        dataset.num_items,
        split.train.len(),
        split.valid.len(),
        split.test.len()
    );

    // 3. The multi-relation graph G (paper §III-A) — stage-1 prior knowledge.
    let graph = build_graph(&dataset, &GraphConfig::default());
    println!(
        "multi-relation graph: {} edges across 5 relation types",
        graph.total_edges()
    );

    // 4. SSDRec with a SASRec backbone.
    let cfg = SsdRecConfig {
        dim: 16,
        max_len: 50,
        backbone: BackboneKind::SasRec,
        ..SsdRecConfig::default()
    };
    let mut model = SsdRec::new(&graph, cfg);

    // 5. Train with early stopping on validation HR@20.
    let tc = TrainConfig {
        epochs: 12,
        batch_size: 64,
        patience: 4,
        verbose: true,
        ..TrainConfig::default()
    };
    let report = train(&mut model, &split, &tc);

    println!("\ntrained {} epochs (early stopping)", report.epochs_run);
    println!("valid: {}", report.valid);
    println!("test : {}", report.test);

    // 6. Inspect the denoiser on one test user.
    let ex = &split.test[0];
    let kept = model.keep_decisions_for(&ex.seq, ex.user);
    let dropped: Vec<usize> = ex
        .seq
        .iter()
        .zip(&kept)
        .filter(|(_, &k)| !k)
        .map(|(&it, _)| it)
        .collect();
    println!(
        "\nuser {}: sequence {:?}\n         denoiser drops {:?}",
        ex.user, ex.seq, dropped
    );
}
