//! Serving workflow: train SSDRec, checkpoint it to disk, reload into a
//! fresh model, and serve top-k recommendations — the downstream-user path.
//!
//! Run with: `cargo run --release --example serve_model`

use ssdrec::core::{SsdRec, SsdRecConfig};
use ssdrec::data::{prepare, SyntheticConfig};
use ssdrec::graph::{build_graph, GraphConfig};
use ssdrec::models::{train, RecModel, TrainConfig};
use ssdrec::tensor::{load_params, save_params};

fn main() {
    let raw = SyntheticConfig::yelp().scaled(0.25).generate();
    let (dataset, split) = prepare(&raw, 50, 2);
    let graph = build_graph(&dataset, &GraphConfig::default());

    // Train.
    let cfg = SsdRecConfig {
        dim: 16,
        max_len: 50,
        ..SsdRecConfig::default()
    };
    let mut model = SsdRec::new(&graph, cfg.clone());
    let tc = TrainConfig {
        epochs: 10,
        batch_size: 64,
        patience: 4,
        ..TrainConfig::default()
    };
    let report = train(&mut model, &split, &tc);
    println!(
        "trained: test HR@20 {:.4} ({} parameters)",
        report.test.hr20,
        model.store.num_scalars()
    );

    // Checkpoint.
    let path = std::env::temp_dir().join("ssdrec_demo.ssdt");
    save_params(&model.store, &path).expect("save checkpoint");
    println!("checkpoint written to {}", path.display());

    // Reload into a freshly-built model (same architecture, same graph).
    let mut served = SsdRec::new(&graph, cfg);
    load_params(&mut served.store, &path).expect("load checkpoint");

    // Serve.
    let ex = &split.test[0];
    let recs = served.recommend(ex.user, &ex.seq, 5);
    println!("\nuser {} history: {:?}", ex.user, ex.seq);
    println!("ground-truth next item: {}", ex.target);
    println!("top-5 recommendations:");
    for (rank, (item, score)) in recs.iter().enumerate() {
        let marker = if *item == ex.target {
            "  ← ground truth"
        } else {
            ""
        };
        println!(
            "  {}. item {:>4}  score {:+.3}{}",
            rank + 1,
            item,
            score,
            marker
        );
    }

    // Sanity: reloaded model agrees with the trained one exactly.
    let orig = model.recommend(ex.user, &ex.seq, 5);
    assert_eq!(orig, recs, "checkpoint roundtrip changed predictions");
    println!("\ncheckpoint roundtrip verified: predictions identical");
}
